#include "sim/batch.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "sim/session.hpp"
#include "util/contract.hpp"

namespace ufc::sim {

namespace {

struct SlotSite {
  std::size_t run = 0;   ///< Index into the simulated-slot list.
  std::size_t site = 0;
  double unit_cost = 0.0;  ///< $ per server-hour of batch work.
  double capacity = 0.0;   ///< Residual servers.
};

}  // namespace

BatchWeekResult run_batch_week(const traces::Scenario& scenario,
                               const BatchWorkloadOptions& options,
                               const SimulatorOptions& sim_options) {
  UFC_EXPECTS(options.batch_fraction >= 0.0);
  UFC_EXPECTS(options.deadline_hours >= 0);

  const std::size_t n = scenario.num_datacenters();
  const double tax = scenario.config().carbon_tax;
  const double p0 = scenario.config().fuel_cell_price;

  // Interactive layer: the paper's hybrid solution defines what is left.
  std::vector<int> slots_run;
  const std::vector<admm::AdmgReport> reports =
      solve_all_slots(scenario, admm::Strategy::Hybrid, sim_options,
                      &slots_run);
  const std::size_t horizon = slots_run.size();

  // Residual capacity and marginal unit costs per (slot, site).
  std::vector<SlotSite> pairs;
  pairs.reserve(horizon * n);
  std::vector<std::vector<double>> capacity(horizon, std::vector<double>(n));
  std::vector<std::vector<double>> unit_cost(horizon, std::vector<double>(n));
  for (std::size_t run = 0; run < horizon; ++run) {
    const auto slot = static_cast<std::size_t>(slots_run[run]);
    const auto problem = scenario.problem_at(slots_run[run]);
    for (std::size_t j = 0; j < n; ++j) {
      const double eff =
          scenario.prices()(slot, j) +
          scenario.carbon_rates()(slot, j) / 1000.0 * tax;
      const double marginal = std::min(eff, p0);
      capacity[run][j] = std::max(
          0.0, problem.datacenters[j].servers -
                   reports[run].solution.lambda.col_sum(j));
      unit_cost[run][j] = problem.beta_mw(j) * marginal;
      pairs.push_back({run, j, unit_cost[run][j], capacity[run][j]});
    }
  }

  // Batch arrivals, in server-hours.
  std::vector<double> arrivals(horizon);
  BatchWeekResult result;
  for (std::size_t run = 0; run < horizon; ++run) {
    arrivals[run] =
        options.batch_fraction *
        scenario.total_workload()[static_cast<std::size_t>(slots_run[run])];
    result.total_batch_units += arrivals[run];
  }

  // Window length in simulated slots (deadlines are given in hours).
  const std::size_t window =
      static_cast<std::size_t>(options.deadline_hours / sim_options.stride);

  // ---- Inline baseline: run on arrival, cheapest site first. -------------
  auto worst_cost_at = [&](std::size_t run) {
    double worst = 0.0;
    for (std::size_t j = 0; j < n; ++j)
      worst = std::max(worst, unit_cost[run][j]);
    return worst;
  };
  {
    auto residual = capacity;
    for (std::size_t run = 0; run < horizon; ++run) {
      double remaining = arrivals[run];
      std::vector<std::size_t> order(n);
      std::iota(order.begin(), order.end(), 0u);
      std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return unit_cost[run][a] < unit_cost[run][b];
      });
      for (const std::size_t j : order) {
        const double placed = std::min(remaining, residual[run][j]);
        result.inline_cost += placed * unit_cost[run][j];
        residual[run][j] -= placed;
        remaining -= placed;
        if (remaining <= 0.0) break;
      }
      if (remaining > 1e-9) {
        // No room in the arrival hour at all: book it at the hour's worst
        // price (it would have to preempt or overflow in reality).
        result.inline_cost += remaining * worst_cost_at(run);
        result.all_scheduled = false;
      }
    }
  }

  // ---- Deadline-aware schedule: cheapest (slot, site) pairs first, -------
  // earliest-deadline-first among the arrivals whose window covers them.
  std::sort(pairs.begin(), pairs.end(),
            [](const SlotSite& a, const SlotSite& b) {
              return a.unit_cost < b.unit_cost;
            });
  std::vector<double> remaining = arrivals;
  result.scheduled_load.assign(horizon, 0.0);
  double delay_weighted = 0.0;
  double deferred = 0.0;
  for (const auto& pair : pairs) {
    double room = pair.capacity;
    if (room <= 0.0) continue;
    const std::size_t earliest =
        pair.run >= window ? pair.run - window : 0u;
    for (std::size_t arr = earliest; arr <= pair.run && room > 0.0; ++arr) {
      if (remaining[arr] <= 0.0) continue;
      const double placed = std::min(remaining[arr], room);
      remaining[arr] -= placed;
      room -= placed;
      result.scheduled_cost += placed * pair.unit_cost;
      result.scheduled_load[pair.run] += placed;
      const double delay_hours =
          static_cast<double>((pair.run - arr) *
                              static_cast<std::size_t>(sim_options.stride));
      delay_weighted += placed * delay_hours;
      if (pair.run != arr) deferred += placed;
    }
  }
  for (std::size_t arr = 0; arr < horizon; ++arr) {
    if (remaining[arr] > 1e-9) {
      result.scheduled_cost += remaining[arr] * worst_cost_at(arr);
      result.unplaced_units += remaining[arr];
      result.all_scheduled = false;
    }
  }

  result.saving_pct =
      result.inline_cost > 0.0
          ? 100.0 * (result.inline_cost - result.scheduled_cost) /
                result.inline_cost
          : 0.0;
  if (result.total_batch_units > 0.0) {
    result.average_delay_hours = delay_weighted / result.total_batch_units;
    result.deferred_fraction = deferred / result.total_batch_units;
  }
  return result;
}

}  // namespace ufc::sim
