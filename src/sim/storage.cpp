#include "sim/storage.hpp"

#include <algorithm>
#include <cmath>

#include "sim/session.hpp"
#include "util/contract.hpp"
#include "util/stats.hpp"

namespace ufc::sim {

namespace {

/// Effective price of one more MWh of grid energy at site j in slot t:
/// LMP plus the marginal carbon cost.
double effective_price(const traces::Scenario& scenario, std::size_t slot,
                       std::size_t j, double carbon_tax_per_ton) {
  return scenario.prices()(slot, j) +
         scenario.carbon_rates()(slot, j) / 1000.0 * carbon_tax_per_ton;
}

/// Value of displacing `delta` MWh of running generation, priciest first.
double displacement_gain(double delta, double nu, double mu, double eff,
                         double p0) {
  if (eff >= p0) {
    const double from_grid = std::min(delta, nu);
    return eff * from_grid + p0 * std::min(delta - from_grid, mu);
  }
  const double from_fc = std::min(delta, mu);
  return p0 * from_fc + eff * std::min(delta - from_fc, nu);
}

}  // namespace

StorageWeekResult run_storage_week(const traces::Scenario& scenario,
                                   const StoragePolicyOptions& policy,
                                   const SimulatorOptions& options) {
  UFC_EXPECTS(policy.charge_quantile >= 0.0 && policy.charge_quantile <= 1.0);
  UFC_EXPECTS(policy.discharge_quantile >= policy.charge_quantile);
  UFC_EXPECTS(policy.discharge_quantile <= 1.0);

  const std::size_t n = scenario.num_datacenters();
  const double tax = scenario.config().carbon_tax;
  const double p0 = scenario.config().fuel_cell_price;

  // Per-site thresholds over the *marginal energy value* the battery can
  // displace: grid at the effective price, or fuel cells at p0 (the hybrid
  // switches to fuel cells exactly when grid is expensive, so a grid-only
  // view would find nothing left to shave at peak).
  std::vector<double> charge_below(n), discharge_above(n);
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<double> values;
    values.reserve(static_cast<std::size_t>(scenario.hours()));
    for (int t = 0; t < scenario.hours(); ++t) {
      const double eff =
          effective_price(scenario, static_cast<std::size_t>(t), j, tax);
      values.push_back(std::min(eff, p0));
    }
    charge_below[j] = percentile(values, 100.0 * policy.charge_quantile);
    discharge_above[j] = percentile(values, 100.0 * policy.discharge_quantile);
    // Never charge at prices the round trip cannot recover.
    charge_below[j] = std::min(
        charge_below[j],
        policy.battery.round_trip_efficiency * discharge_above[j]);
  }

  std::vector<Battery> batteries(n, Battery(policy.battery));

  // Pass 1: solve every slot once (shared by the base and with-storage
  // accounting) and learn each site's grid-draw profile so charging never
  // creates a new peak.
  std::vector<int> slots_run;
  std::vector<admm::AdmgReport> reports =
      solve_all_slots(scenario, admm::Strategy::Hybrid, options, &slots_run);
  std::vector<double> charge_headroom(n);  // grid-draw cap while charging
  for (std::size_t j = 0; j < n; ++j) {
    std::vector<double> draws;
    draws.reserve(reports.size());
    for (const auto& report : reports)
      draws.push_back(std::max(0.0, report.solution.nu[j]));
    charge_headroom[j] = max_value(draws);
  }

  StorageWeekResult result;
  double base_cost_total = 0.0;
  double with_cost_total = 0.0;
  double base_peak = 0.0;
  double with_peak = 0.0;
  double base_carbon = 0.0;
  double with_carbon = 0.0;

  for (std::size_t run = 0; run < slots_run.size(); ++run) {
    const int t = slots_run[run];
    const auto slot = static_cast<std::size_t>(t);
    const auto& report = reports[run];

    StorageSlotResult slot_result;
    slot_result.slot = t;

    for (std::size_t j = 0; j < n; ++j) {
      const double eff = effective_price(scenario, slot, j, tax);
      const double lmp = scenario.prices()(slot, j);
      const double carbon_rate = scenario.carbon_rates()(slot, j);
      const double nu = std::max(0.0, report.solution.nu[j]);
      const double mu = std::max(0.0, report.solution.mu[j]);

      slot_result.grid_cost_base += lmp * nu + p0 * mu;
      slot_result.carbon_tons_base += nu * carbon_rate / 1000.0;
      slot_result.peak_grid_mw_base =
          std::max(slot_result.peak_grid_mw_base, nu);

      double grid_draw = nu;
      double fuel_cell = mu;
      auto& battery = batteries[j];

      // What is a discharged MWh worth right now? The priciest marginal
      // source currently running.
      const double value_now = std::max(grid_draw > 0.0 ? eff : 0.0,
                                        fuel_cell > 0.0 ? p0 : 0.0);
      if (value_now >= discharge_above[j] && (grid_draw + fuel_cell) > 0.0) {
        double delivered = battery.discharge(grid_draw + fuel_cell);
        slot_result.discharged_mwh += delivered;
        // Displace the more expensive source first.
        if (eff >= p0) {
          const double from_grid = std::min(delivered, grid_draw);
          grid_draw -= from_grid;
          delivered -= from_grid;
          fuel_cell -= std::min(delivered, fuel_cell);
        } else {
          const double from_fc = std::min(delivered, fuel_cell);
          fuel_cell -= from_fc;
          delivered -= from_fc;
          grid_draw -= std::min(delivered, grid_draw);
        }
      } else if (std::min(eff, p0) <= charge_below[j]) {
        // Charge from the cheaper of grid and fuel cells (biogas digesters
        // keep producing off-peak; storing their output is legitimate),
        // but never push the site's grid draw beyond its no-storage peak —
        // charging must not create the peak it exists to shave.
        double charge_mw = battery.available_charge_mw();
        if (eff <= p0)
          charge_mw = std::min(charge_mw,
                               std::max(0.0, charge_headroom[j] - grid_draw));
        const double accepted = charge_mw;
        battery.charge_from_grid(accepted);
        slot_result.charged_grid_mwh += accepted;
        if (eff <= p0)
          grid_draw += accepted;
        else
          fuel_cell += accepted;
      }

      slot_result.grid_cost_with += lmp * grid_draw + p0 * fuel_cell;
      slot_result.carbon_tons_with += grid_draw * carbon_rate / 1000.0;
      slot_result.peak_grid_mw_with =
          std::max(slot_result.peak_grid_mw_with, grid_draw);
    }

    base_cost_total += slot_result.grid_cost_base;
    with_cost_total += slot_result.grid_cost_with;
    base_carbon += slot_result.carbon_tons_base;
    with_carbon += slot_result.carbon_tons_with;
    base_peak = std::max(base_peak, slot_result.peak_grid_mw_base);
    with_peak = std::max(with_peak, slot_result.peak_grid_mw_with);
    result.slots.push_back(slot_result);
  }

  result.total_saving = base_cost_total - with_cost_total;
  result.saving_pct =
      base_cost_total > 0.0 ? 100.0 * result.total_saving / base_cost_total
                            : 0.0;
  result.peak_reduction_pct =
      base_peak > 0.0 ? 100.0 * (base_peak - with_peak) / base_peak : 0.0;
  result.carbon_delta_tons = with_carbon - base_carbon;
  return result;
}

StorageWeekResult run_storage_week_optimal(
    const traces::Scenario& scenario, const OptimalStorageOptions& options,
    const SimulatorOptions& sim_options) {
  UFC_EXPECTS(options.soc_levels >= 2);
  const auto& battery = options.battery;
  Battery validator(battery);  // validates the spec
  (void)validator;

  const std::size_t n = scenario.num_datacenters();
  const double tax = scenario.config().carbon_tax;
  const double p0 = scenario.config().fuel_cell_price;
  const double eta = battery.round_trip_efficiency;

  std::vector<int> slots_run;
  const std::vector<admm::AdmgReport> reports =
      solve_all_slots(scenario, admm::Strategy::Hybrid, sim_options,
                      &slots_run);
  const std::size_t horizon = slots_run.size();

  StorageWeekResult result;
  result.slots.resize(horizon);
  for (std::size_t run = 0; run < horizon; ++run)
    result.slots[run].slot = slots_run[run];

  double base_cost_total = 0.0, with_cost_total = 0.0;
  double base_carbon = 0.0, with_carbon = 0.0;
  double base_peak = 0.0, with_peak = 0.0;

  // Keep the SoC step fine enough (<= 0.1 MWh) that small charge actions
  // can always fit inside the grid-peak headroom; otherwise large batteries
  // would be artificially unable to trickle-charge. Capped to bound DP cost.
  const std::size_t levels = std::clamp<std::size_t>(
      std::max<std::size_t>(static_cast<std::size_t>(options.soc_levels),
                            static_cast<std::size_t>(
                                std::ceil(battery.capacity_mwh / 0.1))),
      2, 800);
  const double delta = battery.capacity_mwh / static_cast<double>(levels);
  // Max SoC steps movable per hour (charge measured after losses).
  const std::size_t max_up =
      delta > 0.0 ? static_cast<std::size_t>(battery.max_charge_mw * eta / delta)
                  : 0;
  const std::size_t max_down =
      delta > 0.0 ? static_cast<std::size_t>(battery.max_discharge_mw / delta)
                  : 0;

  for (std::size_t j = 0; j < n; ++j) {
    // Per-slot site data.
    std::vector<double> eff(horizon), lmp(horizon), carbon(horizon),
        nu(horizon), mu(horizon), fc_room(horizon);
    double grid_peak = 0.0;
    for (std::size_t run = 0; run < horizon; ++run) {
      const auto slot = static_cast<std::size_t>(slots_run[run]);
      eff[run] = effective_price(scenario, slot, j, tax);
      lmp[run] = scenario.prices()(slot, j);
      carbon[run] = scenario.carbon_rates()(slot, j);
      nu[run] = std::max(0.0, reports[run].solution.nu[j]);
      mu[run] = std::max(0.0, reports[run].solution.mu[j]);
      const auto problem = scenario.problem_at(slots_run[run]);
      fc_room[run] =
          std::max(0.0, problem.datacenters[j].fuel_cell_capacity_mw - mu[run]);
      grid_peak = std::max(grid_peak, nu[run]);
    }

    // Per-slot action economics.
    // Charging k SoC steps draws k*delta/eta MWh from the cheaper source,
    // respecting the peak guard (grid) / fuel-cell capacity headroom.
    auto charge_cost = [&](std::size_t run, std::size_t k) {
      const double terminals = static_cast<double>(k) * delta / eta;
      if (terminals > battery.max_charge_mw + 1e-12) return 1e18;
      const bool grid_cheaper = eff[run] <= p0;
      if (grid_cheaper) {
        if (terminals > std::max(0.0, grid_peak - nu[run]) + 1e-12) return 1e18;
        return eff[run] * terminals;
      }
      if (terminals > fc_room[run] + 1e-12) return 1e18;
      return p0 * terminals;
    };
    auto discharge_gain = [&](std::size_t run, std::size_t k) {
      const double delivered = static_cast<double>(k) * delta;
      if (delivered > battery.max_discharge_mw + 1e-12) return -1e18;
      if (delivered > nu[run] + mu[run] + 1e-12) return -1e18;
      return displacement_gain(delivered, nu[run], mu[run], eff[run], p0);
    };

    // Backward DP: value[s] = best profit from this slot onward at SoC s.
    std::vector<double> value(levels + 1, 0.0);
    // best_action[run][s]: signed SoC steps (+charge, -discharge).
    std::vector<std::vector<int>> best_action(
        horizon, std::vector<int>(levels + 1, 0));
    for (std::size_t back = 0; back < horizon; ++back) {
      const std::size_t run = horizon - 1 - back;
      std::vector<double> next = value;
      for (std::size_t s = 0; s <= levels; ++s) {
        double best = next[s];  // idle
        int action = 0;
        for (std::size_t k = 1; k <= max_up && s + k <= levels; ++k) {
          const double candidate = next[s + k] - charge_cost(run, k);
          if (candidate > best) {
            best = candidate;
            action = static_cast<int>(k);
          }
        }
        for (std::size_t k = 1; k <= max_down && k <= s; ++k) {
          const double candidate = next[s - k] + discharge_gain(run, k);
          if (candidate > best) {
            best = candidate;
            action = -static_cast<int>(k);
          }
        }
        value[s] = best;
        best_action[run][s] = action;
      }
    }

    // Forward pass: execute the schedule and account costs.
    std::size_t s = 0;
    for (std::size_t run = 0; run < horizon; ++run) {
      auto& slot_result = result.slots[run];
      slot_result.grid_cost_base += lmp[run] * nu[run] + p0 * mu[run];
      slot_result.carbon_tons_base += nu[run] * carbon[run] / 1000.0;
      slot_result.peak_grid_mw_base =
          std::max(slot_result.peak_grid_mw_base, nu[run]);

      double grid_draw = nu[run];
      double fuel_cell = mu[run];
      const int action = best_action[run][s];
      if (action > 0) {
        const double terminals = static_cast<double>(action) * delta / eta;
        if (eff[run] <= p0)
          grid_draw += terminals;
        else
          fuel_cell += terminals;
        slot_result.charged_grid_mwh += terminals;
        s += static_cast<std::size_t>(action);
      } else if (action < 0) {
        double delivered = static_cast<double>(-action) * delta;
        slot_result.discharged_mwh += delivered;
        if (eff[run] >= p0) {
          const double from_grid = std::min(delivered, grid_draw);
          grid_draw -= from_grid;
          delivered -= from_grid;
          fuel_cell -= std::min(delivered, fuel_cell);
        } else {
          const double from_fc = std::min(delivered, fuel_cell);
          fuel_cell -= from_fc;
          delivered -= from_fc;
          grid_draw -= std::min(delivered, grid_draw);
        }
        s -= static_cast<std::size_t>(-action);
      }

      slot_result.grid_cost_with += lmp[run] * grid_draw + p0 * fuel_cell;
      slot_result.carbon_tons_with += grid_draw * carbon[run] / 1000.0;
      slot_result.peak_grid_mw_with =
          std::max(slot_result.peak_grid_mw_with, grid_draw);
    }
  }

  for (const auto& slot_result : result.slots) {
    base_cost_total += slot_result.grid_cost_base;
    with_cost_total += slot_result.grid_cost_with;
    base_carbon += slot_result.carbon_tons_base;
    with_carbon += slot_result.carbon_tons_with;
    base_peak = std::max(base_peak, slot_result.peak_grid_mw_base);
    with_peak = std::max(with_peak, slot_result.peak_grid_mw_with);
  }
  result.total_saving = base_cost_total - with_cost_total;
  result.saving_pct =
      base_cost_total > 0.0 ? 100.0 * result.total_saving / base_cost_total
                            : 0.0;
  result.peak_reduction_pct =
      base_peak > 0.0 ? 100.0 * (base_peak - with_peak) / base_peak : 0.0;
  result.carbon_delta_tons = with_carbon - base_carbon;
  return result;
}

}  // namespace ufc::sim
