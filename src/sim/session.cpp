#include "sim/session.hpp"

#include "util/contract.hpp"

namespace ufc::sim {

void apply_outages(UfcProblem& problem,
                   const std::vector<FuelCellOutage>& outages, int hour) {
  for (const auto& outage : outages) {
    UFC_EXPECTS(outage.datacenter < problem.num_datacenters());
    UFC_EXPECTS(outage.last_hour >= outage.first_hour);
    if (outage.covers(hour))
      problem.datacenters[outage.datacenter].fuel_cell_capacity_mw = 0.0;
  }
}

SolveSession::SolveSession(admm::Strategy strategy,
                           const SimulatorOptions& options)
    : strategy_(strategy), options_(options), admg_(options.admg) {
  UFC_EXPECTS(options_.stride >= 1);
  admg_.pinning = admm::pinning_for(strategy);
}

admm::AdmgReport SolveSession::solve(const traces::Scenario& scenario,
                                     int hour) {
  UfcProblem problem = scenario.problem_at(hour);
  apply_outages(problem, options_.outages, hour);
  if (!options_.warm_start)
    return admm::solve_strategy(problem, strategy_, options_.admg);
  if (!warm_) {
    warm_.emplace(problem, admg_);
    return warm_->solve();
  }
  warm_->set_problem(problem);
  return warm_->solve_warm();
}

std::vector<admm::AdmgReport> solve_all_slots(const traces::Scenario& scenario,
                                              admm::Strategy strategy,
                                              const SimulatorOptions& options,
                                              std::vector<int>* slots_run) {
  SolveSession session(strategy, options);
  std::vector<admm::AdmgReport> reports;
  for (int t = 0; t < scenario.hours(); t += options.stride) {
    if (slots_run != nullptr) slots_run->push_back(t);
    reports.push_back(session.solve(scenario, t));
  }
  return reports;
}

}  // namespace ufc::sim
