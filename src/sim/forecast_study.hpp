// Forecast-robustness experiment.
//
// The paper plans each slot against *predicted* arrivals (§II-A). This
// experiment quantifies what that assumption costs: each slot is solved on
// forecasted per-front-end arrivals, the resulting routing proportions and
// fuel-cell dispatch are applied to the *actual* arrivals, and the realized
// UFC is compared with the clairvoyant solution.
#pragma once

#include <vector>

#include "sim/simulator.hpp"
#include "traces/forecast.hpp"

namespace ufc::sim {

enum class ForecastMethod {
  SeasonalNaive,  ///< Same hour yesterday.
  HoltWinters,    ///< Triple exponential smoothing, daily season.
};

struct ForecastStudyOptions {
  ForecastMethod method = ForecastMethod::HoltWinters;
  traces::HoltWintersParams holt_winters;
  admm::AdmgOptions admg;
  /// Skip this many warm-up slots when aggregating (forecast init window).
  int skip_slots = 24;
  ForecastStudyOptions() {
    admg.tolerance = 3e-3;
    admg.max_iterations = 800;
    admg.record_trace = false;
  }
};

struct ForecastStudyResult {
  double workload_mape = 0.0;        ///< Forecast error on total workload.
  double avg_ufc_gap_pct = 0.0;      ///< Mean realized-vs-clairvoyant gap.
  double max_ufc_gap_pct = 0.0;
  std::vector<double> ufc_gap_pct;   ///< Per evaluated slot.
  std::vector<double> realized_ufc;
  std::vector<double> clairvoyant_ufc;
};

/// Plans with forecasts, executes on actuals, reports the UFC gap.
/// Routing is scaled per front-end to the actual arrivals (the natural
/// dispatch rule: keep the planned proportions); planned fuel-cell output is
/// kept, with the power balance clamping any excess.
ForecastStudyResult run_forecast_study(
    const traces::Scenario& scenario,
    const ForecastStudyOptions& options = {});

}  // namespace ufc::sim
