#include "sim/sweep.hpp"

#include <optional>

#include "obs/metrics_observer.hpp"
#include "util/contract.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace ufc::sim {

namespace {

SweepPoint run_point(const traces::ScenarioConfig& config, double parameter,
                     const SimulatorOptions& options) {
  const auto scenario = traces::Scenario::generate(config);
  const auto grid = run_strategy_week(scenario, admm::Strategy::Grid, options);
  const auto hybrid =
      run_strategy_week(scenario, admm::Strategy::Hybrid, options);

  std::vector<double> improvements;
  improvements.reserve(grid.slots.size());
  for (std::size_t s = 0; s < grid.slots.size(); ++s)
    improvements.push_back(improvement_percent(
        hybrid.slots[s].breakdown.ufc, grid.slots[s].breakdown.ufc));

  SweepPoint point;
  point.parameter = parameter;
  point.avg_improvement_pct = mean(improvements);
  point.avg_utilization = hybrid.average_utilization();
  return point;
}

/// Shared sweep driver: runs every point in the pool, each recording into
/// its own registry slot; the slots merge into `metrics` serially in point
/// order afterwards, so the aggregate is deterministic regardless of how
/// the pool scheduled the points.
template <typename ConfigurePoint>
std::vector<SweepPoint> run_sweep(std::span<const double> parameters,
                                  const SimulatorOptions& options,
                                  obs::MetricsRegistry* metrics,
                                  ConfigurePoint configure_point) {
  std::vector<SweepPoint> points(parameters.size());
  std::vector<obs::MetricsRegistry> point_metrics(
      metrics != nullptr ? parameters.size() : 0);
  util::ThreadPool pool(util::resolve_thread_count(options.admg.threads));
  pool.parallel_for(0, parameters.size(), [&](std::size_t k) {
    SimulatorOptions point_options = options;
    std::optional<obs::MetricsObserver> observer;
    if (metrics != nullptr) {
      observer.emplace(point_metrics[k]);
      point_options.admg.observer = &*observer;
    }
    points[k] =
        run_point(configure_point(parameters[k]), parameters[k], point_options);
  });
  if (metrics != nullptr)
    for (const obs::MetricsRegistry& slot : point_metrics) metrics->merge(slot);
  return points;
}

}  // namespace

std::vector<SweepPoint> sweep_fuel_cell_price(
    const traces::ScenarioConfig& base, std::span<const double> prices,
    const SimulatorOptions& options, obs::MetricsRegistry* metrics) {
  UFC_EXPECTS(!prices.empty());
  for (double p0 : prices) UFC_EXPECTS(p0 >= 0.0);
  // Sweep points are fully independent (each regenerates its own scenario),
  // so they share the solver's thread knob; every point writes only its own
  // slot, keeping results identical to the serial sweep.
  return run_sweep(prices, options, metrics, [&](double p0) {
    traces::ScenarioConfig config = base;
    config.fuel_cell_price = p0;
    return config;
  });
}

std::vector<SweepPoint> sweep_carbon_tax(const traces::ScenarioConfig& base,
                                         std::span<const double> taxes,
                                         const SimulatorOptions& options,
                                         obs::MetricsRegistry* metrics) {
  UFC_EXPECTS(!taxes.empty());
  for (double tax : taxes) UFC_EXPECTS(tax >= 0.0);
  return run_sweep(taxes, options, metrics, [&](double tax) {
    traces::ScenarioConfig config = base;
    config.carbon_tax = tax;
    return config;
  });
}

}  // namespace ufc::sim
