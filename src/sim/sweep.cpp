#include "sim/sweep.hpp"

#include "util/contract.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace ufc::sim {

namespace {

SweepPoint run_point(const traces::ScenarioConfig& config, double parameter,
                     const SimulatorOptions& options) {
  const auto scenario = traces::Scenario::generate(config);
  const auto grid = run_strategy_week(scenario, admm::Strategy::Grid, options);
  const auto hybrid =
      run_strategy_week(scenario, admm::Strategy::Hybrid, options);

  std::vector<double> improvements;
  improvements.reserve(grid.slots.size());
  for (std::size_t s = 0; s < grid.slots.size(); ++s)
    improvements.push_back(improvement_percent(
        hybrid.slots[s].breakdown.ufc, grid.slots[s].breakdown.ufc));

  SweepPoint point;
  point.parameter = parameter;
  point.avg_improvement_pct = mean(improvements);
  point.avg_utilization = hybrid.average_utilization();
  return point;
}

}  // namespace

std::vector<SweepPoint> sweep_fuel_cell_price(
    const traces::ScenarioConfig& base, std::span<const double> prices,
    const SimulatorOptions& options) {
  UFC_EXPECTS(!prices.empty());
  for (double p0 : prices) UFC_EXPECTS(p0 >= 0.0);
  // Sweep points are fully independent (each regenerates its own scenario),
  // so they share the solver's thread knob; every point writes only its own
  // slot, keeping results identical to the serial sweep.
  std::vector<SweepPoint> points(prices.size());
  util::ThreadPool pool(util::resolve_thread_count(options.admg.threads));
  pool.parallel_for(0, prices.size(), [&](std::size_t k) {
    traces::ScenarioConfig config = base;
    config.fuel_cell_price = prices[k];
    points[k] = run_point(config, prices[k], options);
  });
  return points;
}

std::vector<SweepPoint> sweep_carbon_tax(const traces::ScenarioConfig& base,
                                         std::span<const double> taxes,
                                         const SimulatorOptions& options) {
  UFC_EXPECTS(!taxes.empty());
  for (double tax : taxes) UFC_EXPECTS(tax >= 0.0);
  std::vector<SweepPoint> points(taxes.size());
  util::ThreadPool pool(util::resolve_thread_count(options.admg.threads));
  pool.parallel_for(0, taxes.size(), [&](std::size_t k) {
    traces::ScenarioConfig config = base;
    config.carbon_tax = taxes[k];
    points[k] = run_point(config, taxes[k], options);
  });
  return points;
}

}  // namespace ufc::sim
