// Policy parameter sweeps (paper Figs. 9 and 10).
//
// Each sweep point re-runs the full week under the Hybrid and Grid
// strategies with one policy knob changed — the fuel-cell price p0 (Fig. 9)
// or the carbon-tax rate r (Fig. 10) — on identical traces (the scenario
// seed fixes them), and reports the two series the paper plots: average UFC
// improvement of Hybrid over Grid and average fuel-cell utilization.
#pragma once

#include <span>
#include <vector>

#include "obs/metrics.hpp"
#include "sim/simulator.hpp"

namespace ufc::sim {

struct SweepPoint {
  double parameter = 0.0;            ///< p0 ($/MWh) or tax rate ($/ton).
  double avg_improvement_pct = 0.0;  ///< Mean I_hg over slots.
  double avg_utilization = 0.0;      ///< Mean fuel-cell utilization (Hybrid).
};

/// Sweeps the fuel-cell generation price p0 (Fig. 9).
///
/// When `metrics` is non-null, every solve of every sweep point is recorded
/// through a MetricsObserver into a per-point registry; the registries are
/// merged into `metrics` serially in point order after the parallel loop, so
/// the aggregate is identical no matter how the pool interleaved the points.
/// Attaching metrics never changes the sweep results (the observer seam is
/// read-only).
std::vector<SweepPoint> sweep_fuel_cell_price(
    const traces::ScenarioConfig& base, std::span<const double> prices,
    const SimulatorOptions& options = {},
    obs::MetricsRegistry* metrics = nullptr);

/// Sweeps the carbon tax rate r (Fig. 10). Metrics as above.
std::vector<SweepPoint> sweep_carbon_tax(
    const traces::ScenarioConfig& base, std::span<const double> taxes,
    const SimulatorOptions& options = {},
    obs::MetricsRegistry* metrics = nullptr);

}  // namespace ufc::sim
