// SolveSession: the one per-slot solve path shared by every simulation
// driver (weekly comparison, storage accounting, batch scheduling).
//
// A session owns the strategy pinning, the scenario-level fault model
// (fuel-cell outages) and the optional warm-started solver, so drivers ask
// for "the report for hour t" instead of each re-implementing the
// cold/warm-start dance around AdmgSolver.
#pragma once

#include <optional>
#include <vector>

#include "sim/simulator.hpp"

namespace ufc::sim {

/// Applies every outage window covering `hour` to the slot problem (the
/// affected fuel cells produce nothing: mu_max_j = 0). Shared by the per-slot
/// solve path below and the ctrl layer's scenario tick stream, so both replay
/// the same fault model. Throws ContractViolation on an out-of-range
/// datacenter or an inverted window.
void apply_outages(UfcProblem& problem,
                   const std::vector<FuelCellOutage>& outages, int hour);

class SolveSession {
 public:
  SolveSession(admm::Strategy strategy, const SimulatorOptions& options);

  /// Solves the scenario's slot at `hour` (outages applied), reusing the
  /// previous slot's iterate when options.warm_start is set.
  admm::AdmgReport solve(const traces::Scenario& scenario, int hour);

  admm::Strategy strategy() const { return strategy_; }

 private:
  admm::Strategy strategy_;
  SimulatorOptions options_;
  admm::AdmgOptions admg_;  ///< options_.admg with the strategy pinning set.
  std::optional<admm::AdmgSolver> warm_;
};

/// Solves every simulated slot (hours 0, stride, 2*stride, ...) through one
/// SolveSession and returns the reports in slot order. When `slots_run` is
/// non-null it receives the hour index of each report.
std::vector<admm::AdmgReport> solve_all_slots(
    const traces::Scenario& scenario, admm::Strategy strategy,
    const SimulatorOptions& options, std::vector<int>* slots_run = nullptr);

}  // namespace ufc::sim
