// Deferrable (batch) workload extension.
//
// The paper restricts itself to interactive, non-deferrable requests
// (§II-A); its related work (Goiri et al. [26]) shows the other half of the
// story: batch jobs that tolerate deadlines can chase cheap energy in
// *time* as well as space. This module overlays a batch stream on the
// scenario — a fraction of each hour's load, location-free, deferrable up
// to a deadline — and schedules it greedily into the cheapest (hour, site)
// slots with spare server capacity, comparing against running it where and
// when it arrives.
#pragma once

#include <vector>

#include "sim/simulator.hpp"

namespace ufc::sim {

struct BatchWorkloadOptions {
  /// Batch arrivals per hour, as a fraction of that hour's interactive load.
  double batch_fraction = 0.2;
  /// Each batch unit must be executed within this many hours of arrival
  /// (0 = must run in its arrival hour).
  int deadline_hours = 6;
};

struct BatchWeekResult {
  double inline_cost = 0.0;     ///< Batch run on arrival, cheapest site, $.
  double scheduled_cost = 0.0;  ///< Deadline-aware greedy schedule, $.
  double saving_pct = 0.0;
  double total_batch_units = 0.0;   ///< Server-hours of batch work.
  double deferred_fraction = 0.0;   ///< Share of units moved off their arrival hour.
  double average_delay_hours = 0.0;
  /// Scheduled batch load per simulated slot (summed over sites).
  std::vector<double> scheduled_load;
  /// Server-hours the greedy pass could not fit inside window + residual
  /// capacity (booked at the arrival hour's worst price). Greedy EDF is not
  /// optimal; a small residue at high batch fractions is expected.
  double unplaced_units = 0.0;
  bool all_scheduled = true;  ///< unplaced_units == 0 and inline fit too.
};

/// Runs the interactive week under the Hybrid strategy (defining residual
/// capacity and marginal energy prices), then schedules the batch overlay.
BatchWeekResult run_batch_week(const traces::Scenario& scenario,
                               const BatchWorkloadOptions& options,
                               const SimulatorOptions& sim_options = {});

}  // namespace ufc::sim
