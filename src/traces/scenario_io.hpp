// Scenario trace export/import via CSV.
//
// save_scenario_csv writes four files (<prefix>_workload.csv,
// <prefix>_prices.csv, <prefix>_carbon.csv, <prefix>_sites.csv) that fully
// determine the trace side of a scenario; load_scenario_csv reads them back.
// This is the interchange path for users who want to drop in real RTO/ISO
// downloads or archive a generated scenario next to its results.
#pragma once

#include <string>

#include "traces/scenario.hpp"

namespace ufc::traces {

struct ScenarioCsvPaths {
  std::string workload;  ///< hour, fe0..fe{M-1} (servers).
  std::string prices;    ///< hour, one column per datacenter ($/MWh).
  std::string carbon;    ///< hour, one column per datacenter (kg/MWh).
  /// site, servers, lat0..lat{M-1}: one row per datacenter; lat_i is the
  /// latency from front-end i in milliseconds.
  std::string sites;
};

/// File names under `prefix` (e.g. "out/paper" -> "out/paper_workload.csv").
ScenarioCsvPaths scenario_csv_paths(const std::string& prefix);

/// Writes the scenario's traces. Throws std::runtime_error on I/O failure.
ScenarioCsvPaths save_scenario_csv(const Scenario& scenario,
                                   const std::string& prefix);

/// Reads traces written by save_scenario_csv (or hand-assembled in the same
/// layout) and builds a scenario with `config` supplying the policy/power
/// parameters. Site *names* are not round-tripped through CSV (cells are
/// numeric); datacenters are named dc0..dc{N-1}.
Scenario load_scenario_csv(const ScenarioCsvPaths& paths,
                           const ScenarioConfig& config);

}  // namespace ufc::traces
