#include "traces/price.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/contract.hpp"

namespace ufc::traces {

namespace {

double diurnal_shape(int hour_of_day, double peak_hour) {
  const double phase =
      2.0 * std::numbers::pi * (static_cast<double>(hour_of_day) - peak_hour) /
      24.0;
  return 0.5 * (1.0 + std::cos(phase));
}

bool is_weekend(int hour) { return ((hour / 24) % 7) >= 5; }

}  // namespace

std::vector<double> generate_prices(const PriceModelParams& params, int hours,
                                    Rng& rng) {
  UFC_EXPECTS(hours > 0);
  UFC_EXPECTS(params.base > 0.0);
  UFC_EXPECTS(params.noise_persistence >= 0.0 && params.noise_persistence < 1.0);

  UFC_EXPECTS(params.peak_sharpness >= 1.0);
  std::vector<double> prices(static_cast<std::size_t>(hours));
  double noise = 0.0;  // AR(1) state, in fraction-of-level units.
  for (int t = 0; t < hours; ++t) {
    double level =
        params.base +
        params.diurnal_amplitude *
            std::pow(diurnal_shape(t % 24, params.peak_hour),
                     params.peak_sharpness);
    if (is_weekend(t)) level *= params.weekend_factor;

    noise = params.noise_persistence * noise +
            rng.normal(0.0, params.noise_sd);
    level *= (1.0 + noise);

    if (params.spike_probability > 0.0 &&
        rng.bernoulli(params.spike_probability)) {
      level += rng.exponential(1.0 / std::max(1e-9, params.spike_scale));
    }
    prices[static_cast<std::size_t>(t)] = std::max(params.floor, level);
  }
  return prices;
}

PriceModelParams dallas_prices() {
  PriceModelParams p;
  p.region = "Dallas";
  p.base = 15.0;
  p.diurnal_amplitude = 13.0;
  p.peak_hour = 16.0;
  p.weekend_factor = 0.9;
  p.noise_sd = 0.12;
  p.noise_persistence = 0.6;
  p.spike_probability = 0.015;  // ERCOT scarcity pricing.
  p.spike_scale = 170.0;
  return p;
}

PriceModelParams san_jose_prices() {
  PriceModelParams p;
  p.region = "San Jose";
  p.base = 40.0;
  p.diurnal_amplitude = 125.0;
  p.peak_hour = 17.0;
  p.peak_sharpness = 3.5;
  p.weekend_factor = 0.85;
  p.noise_sd = 0.08;
  p.noise_persistence = 0.7;
  return p;
}

PriceModelParams calgary_prices() {
  PriceModelParams p;
  p.region = "Calgary";
  p.base = 26.0;
  p.diurnal_amplitude = 60.0;
  p.peak_hour = 17.0;
  p.peak_sharpness = 2.0;
  p.weekend_factor = 0.9;
  p.noise_sd = 0.18;
  p.noise_persistence = 0.65;
  p.spike_probability = 0.02;
  p.spike_scale = 130.0;
  return p;
}

PriceModelParams pittsburgh_prices() {
  PriceModelParams p;
  p.region = "Pittsburgh";
  p.base = 20.0;
  p.diurnal_amplitude = 85.0;
  p.peak_hour = 15.0;
  p.peak_sharpness = 2.5;
  p.weekend_factor = 0.88;
  p.noise_sd = 0.10;
  p.noise_persistence = 0.7;
  return p;
}

std::vector<PriceModelParams> datacenter_price_models() {
  return {calgary_prices(), san_jose_prices(), dallas_prices(),
          pittsburgh_prices()};
}

}  // namespace ufc::traces
