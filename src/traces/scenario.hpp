// Scenario: assembles the paper's full simulation setup (§IV-A) from the
// trace substrate — N = 4 datacenters (Calgary, San Jose, Dallas,
// Pittsburgh) with capacities U[1.7, 2.3]x10^4 servers, M = 10 front-ends,
// one week of hourly workload / price / carbon-rate series — and exposes a
// ready-to-solve UfcProblem per time slot.
//
// Everything is deterministic in ScenarioConfig::seed. Policy parameters
// (p0, carbon tax, w) do not influence trace generation, so sweeps
// regenerate the scenario with the same seed and get identical traces.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "math/matrix.hpp"
#include "model/problem.hpp"
#include "traces/fuelmix.hpp"
#include "traces/geography.hpp"
#include "traces/price.hpp"
#include "traces/workload.hpp"
#include "util/config.hpp"

namespace ufc::traces {

struct ScenarioConfig {
  std::uint64_t seed = 42;
  int hours = kWeekHours;
  int front_ends = 10;                     ///< M.
  double pue = 1.2;
  ServerPowerModel power{100.0, 200.0};    ///< P_idle / P_peak, watts.
  double server_capacity_low = 1.7e4;      ///< S_j ~ U[low, high].
  double server_capacity_high = 2.3e4;
  double peak_workload_fraction = 0.8;     ///< Peak load vs total capacity.
  double fuel_cell_price = 80.0;           ///< p_0, $/MWh.
  double carbon_tax = 25.0;                ///< r, $/ton.
  double latency_weight = 10.0;            ///< w, $/s^2.
  WorkloadModelParams workload;
};

/// Externally supplied traces (e.g. real RTO downloads loaded from CSV) for
/// building a Scenario without the synthetic generators. Dimensions: T x M
/// arrivals, T x N prices and carbon rates, M x N latencies. `config`
/// supplies the policy/power parameters; its hours/front_ends are
/// overwritten from the matrices.
struct ExternalTraceData {
  ScenarioConfig config;
  std::vector<std::string> datacenter_names;
  std::vector<double> servers;  ///< S_j.
  Mat arrivals;
  Mat prices;
  Mat carbon_rates;
  Mat latency_s;
};

/// A fully generated one-week geo-distributed cloud scenario.
class Scenario {
 public:
  static Scenario generate(const ScenarioConfig& config);

  /// Builds a scenario from user-provided traces (validated for dimension
  /// consistency and non-negativity). Fuel-cell capacities follow the
  /// paper's full-capacity rule (P_peak * S_j * PUE).
  static Scenario from_data(ExternalTraceData data);

  int hours() const { return config_.hours; }
  std::size_t num_front_ends() const { return arrivals_.cols(); }
  std::size_t num_datacenters() const { return datacenter_names_.size(); }

  const ScenarioConfig& config() const { return config_; }
  const std::vector<std::string>& datacenter_names() const {
    return datacenter_names_;
  }
  const std::vector<double>& servers() const { return servers_; }

  /// (hours x M) arrivals A_i(t), in servers required.
  const Mat& arrivals() const { return arrivals_; }
  /// (hours x N) grid prices p_j(t), $/MWh.
  const Mat& prices() const { return prices_; }
  /// (hours x N) carbon rates C_j(t), kg/MWh.
  const Mat& carbon_rates() const { return carbon_rates_; }
  /// Total workload per hour (row sums of arrivals).
  const std::vector<double>& total_workload() const { return total_workload_; }
  /// (M x N) propagation latencies, seconds.
  const Mat& latency_s() const { return latency_s_; }

  /// Builds the single-slot UFC problem for hour `t`.
  UfcProblem problem_at(int t) const;

 private:
  ScenarioConfig config_;
  std::vector<std::string> datacenter_names_;
  std::vector<double> servers_;
  Mat arrivals_;
  Mat prices_;
  Mat carbon_rates_;
  std::vector<double> total_workload_;
  Mat latency_s_;
  std::shared_ptr<const EmissionCostFunction> emission_cost_;
};

/// Table I substrate: a single datacenter's one-week power demand plus the
/// Dallas and San Jose price traces (Fig. 1 of the paper).
struct SingleSiteData {
  std::vector<double> demand_mw;
  std::vector<double> dallas_price;
  std::vector<double> san_jose_price;
};

SingleSiteData generate_single_site_data(std::uint64_t seed,
                                         int hours = kWeekHours);

/// Builds a ScenarioConfig from an INI [scenario] section (missing keys keep
/// the paper defaults). Recognized keys: seed, hours, front_ends, pue,
/// peak_workload_fraction, fuel_cell_price, carbon_tax, latency_weight,
/// server_capacity_low, server_capacity_high.
ScenarioConfig scenario_config_from(const Config& config);

}  // namespace ufc::traces
