// Synthetic interactive-workload traces (substitution for the paper's
// proprietary HP request trace and Facebook power-demand profile; see
// DESIGN.md §4).
//
// Both generators produce hourly series with the features the paper's
// figures show: a strong diurnal cycle (afternoon peak, small-hours trough),
// a weekday/weekend effect, and bursty multiplicative noise. All randomness
// comes from the caller's Rng, so traces are reproducible from a seed.
#pragma once

#include <vector>

#include "math/matrix.hpp"
#include "util/rng.hpp"

namespace ufc::traces {

/// Hours in the paper's evaluation window (one week).
inline constexpr int kWeekHours = 168;

/// HP-like interactive request trace, normalized to [0, 1] ("fraction of the
/// peak number of servers required").
struct WorkloadModelParams {
  double base_level = 0.35;       ///< Trough level as a fraction of peak.
  double diurnal_amplitude = 0.55;///< Peak-to-trough swing.
  double peak_hour = 15.0;        ///< Local hour of the daily peak.
  double weekend_factor = 0.75;   ///< Weekend demand relative to weekdays.
  double noise_sd = 0.04;         ///< Multiplicative log-normal noise sigma.
  double burst_probability = 0.02;///< Chance of an hourly burst.
  double burst_scale = 0.25;      ///< Burst magnitude (fraction of peak).
};

/// Generates `hours` hourly samples in (0, 1]; hour 0 is Monday 00:00.
std::vector<double> generate_workload(const WorkloadModelParams& params,
                                      int hours, Rng& rng);

/// Scales a normalized trace to "servers required" so its maximum equals
/// `peak_fraction * total_server_capacity`.
std::vector<double> scale_to_servers(const std::vector<double>& normalized,
                                     double total_server_capacity,
                                     double peak_fraction);

/// Splits a total-workload trace across `front_ends` proxies following a
/// normal spatial distribution (paper §IV-A): per-proxy shares are drawn
/// once from N(1, cv^2), clamped positive, normalized, and jittered slightly
/// per slot. Returns a (hours x front_ends) matrix whose rows sum to the
/// corresponding total.
Mat split_workload(const std::vector<double>& total, int front_ends, Rng& rng,
                   double cv = 0.35, double slot_jitter_sd = 0.03);

/// Facebook-like datacenter power-demand profile in MW (for Table I /
/// Fig. 1), calibrated so the week's mean is `mean_mw`.
struct DemandModelParams {
  double mean_mw = 2.08;        ///< Week average (Table I calibration).
  double diurnal_amplitude = 0.35;  ///< Fractional swing around the mean.
  double peak_hour = 16.0;
  double weekend_factor = 0.85;
  double noise_sd = 0.05;
};

std::vector<double> generate_power_demand_mw(const DemandModelParams& params,
                                             int hours, Rng& rng);

}  // namespace ufc::traces
