// Workload forecasting substrate.
//
// The paper's model plans each slot against *predicted* arrivals: "the
// near-term request arrival at each front-end proxy server can be predicted
// quite accurately, by employing techniques such as statistical machine
// learning and time series analysis" (§II-A). This module supplies the two
// standard baselines for diurnal series — seasonal-naive and additive
// Holt-Winters triple exponential smoothing — plus the error metrics, so the
// forecast-robustness experiment can quantify how much UFC is lost when
// planning on predictions instead of actuals.
#pragma once

#include <span>
#include <vector>

namespace ufc::traces {

/// Predicts each value by the observation one season earlier
/// (y_hat[t] = y[t - period]); the first `period` values fall back to the
/// first observation. Returns one-step-ahead forecasts aligned with `series`.
std::vector<double> seasonal_naive_forecast(std::span<const double> series,
                                            int period = 24);

/// Additive Holt-Winters (level + trend + seasonal) one-step-ahead smoother.
struct HoltWintersParams {
  int period = 24;      ///< Season length (24 h for diurnal workloads).
  double alpha = 0.35;  ///< Level smoothing, in (0, 1).
  double beta = 0.05;   ///< Trend smoothing, in [0, 1).
  double gamma = 0.25;  ///< Seasonal smoothing, in [0, 1).
};

/// One-step-ahead Holt-Winters forecasts aligned with `series` (y_hat[t] is
/// made knowing y[0..t-1]); the first two seasons are used to initialize
/// level/trend/seasonals and fall back to seasonal-naive forecasts there.
/// Requires series.size() >= 2 * period.
std::vector<double> holt_winters_forecast(std::span<const double> series,
                                          const HoltWintersParams& params = {});

/// Mean absolute percentage error over entries with |actual| > 0, skipping
/// the first `skip` values (the initialization window).
double mape(std::span<const double> actual, std::span<const double> forecast,
            std::size_t skip = 0);

/// Root mean squared error, skipping the first `skip` values.
double rmse(std::span<const double> actual, std::span<const double> forecast,
            std::size_t skip = 0);

}  // namespace ufc::traces
