// Synthetic real-time electricity prices (locational marginal prices,
// $/MWh) for the four RTO/ISO regions of the paper's evaluation
// (substitution for the authors' Sep 10-16 2012 downloads; DESIGN.md §4).
//
// Shape per region: a base level, a diurnal peak (afternoon), a
// weekday/weekend effect, mean-reverting noise, and — for scarcity-priced
// markets like ERCOT — occasional price spikes. Region presets are
// calibrated so the weekly averages match the levels implied by the paper's
// Table I (Dallas cheap at ~27 $/MWh, San Jose expensive at ~80 $/MWh).
#pragma once

#include <string>
#include <vector>

#include "util/rng.hpp"

namespace ufc::traces {

struct PriceModelParams {
  std::string region;
  double base = 40.0;            ///< Off-peak level, $/MWh.
  double diurnal_amplitude = 15.0;  ///< Added at the daily peak, $/MWh.
  double peak_hour = 16.0;
  /// Exponent applied to the cosine shape: 1 = broad sinusoid, >1 narrows
  /// the expensive window into the sharp afternoon peak real LMPs show.
  double peak_sharpness = 1.0;
  double weekend_factor = 0.9;   ///< Weekend price relative to weekdays.
  double noise_sd = 0.10;        ///< Mean-reverting noise, fraction of level.
  double noise_persistence = 0.7;   ///< AR(1) coefficient of the noise.
  double spike_probability = 0.0;   ///< Per-hour scarcity-spike chance.
  double spike_scale = 0.0;      ///< Mean spike height, $/MWh (exponential).
  double floor = 5.0;            ///< Price floor, $/MWh.
};

/// Generates `hours` hourly prices; hour 0 is Monday 00:00.
std::vector<double> generate_prices(const PriceModelParams& params, int hours,
                                    Rng& rng);

/// Region presets (see calibration notes in DESIGN.md).
PriceModelParams dallas_prices();      ///< ERCOT: cheap, spiky.
PriceModelParams san_jose_prices();    ///< CAISO: expensive, strong diurnal.
PriceModelParams calgary_prices();     ///< AESO: moderate, volatile.
PriceModelParams pittsburgh_prices();  ///< PJM: moderate.

/// The four presets in the paper's datacenter order
/// (Calgary, San Jose, Dallas, Pittsburgh).
std::vector<PriceModelParams> datacenter_price_models();

}  // namespace ufc::traces
