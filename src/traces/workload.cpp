#include "traces/workload.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/contract.hpp"
#include "util/stats.hpp"

namespace ufc::traces {

namespace {

/// Smooth diurnal shape in [0, 1]: cosine with its maximum at `peak_hour`.
double diurnal_shape(int hour_of_day, double peak_hour) {
  const double phase =
      2.0 * std::numbers::pi * (static_cast<double>(hour_of_day) - peak_hour) /
      24.0;
  return 0.5 * (1.0 + std::cos(phase));
}

bool is_weekend(int hour) {
  const int day = (hour / 24) % 7;  // Hour 0 = Monday 00:00.
  return day >= 5;
}

}  // namespace

std::vector<double> generate_workload(const WorkloadModelParams& params,
                                      int hours, Rng& rng) {
  UFC_EXPECTS(hours > 0);
  UFC_EXPECTS(params.base_level > 0.0);
  UFC_EXPECTS(params.diurnal_amplitude >= 0.0);
  UFC_EXPECTS(params.base_level + params.diurnal_amplitude <= 1.0);

  std::vector<double> trace(static_cast<std::size_t>(hours));
  for (int t = 0; t < hours; ++t) {
    double level = params.base_level +
                   params.diurnal_amplitude * diurnal_shape(t % 24, params.peak_hour);
    if (is_weekend(t)) level *= params.weekend_factor;
    level *= rng.log_normal(0.0, params.noise_sd);
    if (rng.bernoulli(params.burst_probability))
      level += params.burst_scale * rng.uniform();
    trace[static_cast<std::size_t>(t)] = std::clamp(level, 0.01, 1.0);
  }
  return trace;
}

std::vector<double> scale_to_servers(const std::vector<double>& normalized,
                                     double total_server_capacity,
                                     double peak_fraction) {
  UFC_EXPECTS(!normalized.empty());
  UFC_EXPECTS(total_server_capacity > 0.0);
  UFC_EXPECTS(peak_fraction > 0.0 && peak_fraction <= 1.0);
  const double peak = max_value(normalized);
  UFC_EXPECTS(peak > 0.0);
  const double scale = peak_fraction * total_server_capacity / peak;
  std::vector<double> scaled(normalized.size());
  for (std::size_t t = 0; t < normalized.size(); ++t)
    scaled[t] = normalized[t] * scale;
  return scaled;
}

Mat split_workload(const std::vector<double>& total, int front_ends, Rng& rng,
                   double cv, double slot_jitter_sd) {
  UFC_EXPECTS(!total.empty());
  UFC_EXPECTS(front_ends > 0);
  UFC_EXPECTS(slot_jitter_sd >= 0.0);

  // Fixed spatial shares for the whole week (population distribution),
  // following a normal distribution as in the paper.
  const std::vector<double> base_shares =
      normal_shares(rng, front_ends, 1.0, cv);

  Mat split(total.size(), static_cast<std::size_t>(front_ends));
  for (std::size_t t = 0; t < total.size(); ++t) {
    UFC_EXPECTS(total[t] >= 0.0);
    // Small per-slot jitter so shares are not perfectly static, then
    // renormalize so the row sums exactly to the slot total.
    std::vector<double> shares(base_shares);
    double sum_shares = 0.0;
    for (auto& s : shares) {
      s = std::max(1e-6, s * rng.log_normal(0.0, slot_jitter_sd));
      sum_shares += s;
    }
    for (int i = 0; i < front_ends; ++i)
      split(t, static_cast<std::size_t>(i)) =
          total[t] * shares[static_cast<std::size_t>(i)] / sum_shares;
  }
  return split;
}

std::vector<double> generate_power_demand_mw(const DemandModelParams& params,
                                             int hours, Rng& rng) {
  UFC_EXPECTS(hours > 0);
  UFC_EXPECTS(params.mean_mw > 0.0);
  UFC_EXPECTS(params.diurnal_amplitude >= 0.0 && params.diurnal_amplitude < 1.0);

  std::vector<double> demand(static_cast<std::size_t>(hours));
  for (int t = 0; t < hours; ++t) {
    // Centered diurnal shape in [-1, 1].
    const double centered = 2.0 * diurnal_shape(t % 24, params.peak_hour) - 1.0;
    double level = 1.0 + params.diurnal_amplitude * centered;
    if (is_weekend(t)) level *= params.weekend_factor;
    level *= rng.log_normal(0.0, params.noise_sd);
    demand[static_cast<std::size_t>(t)] = std::max(0.05, level);
  }
  // Calibrate the mean exactly.
  const double m = mean(demand);
  for (auto& d : demand) d *= params.mean_mw / m;
  return demand;
}

}  // namespace ufc::traces
