#include "traces/geography.hpp"

#include <cmath>
#include <numbers>

#include "util/contract.hpp"

namespace ufc::traces {

namespace {
constexpr double kEarthRadiusKm = 6371.0;
constexpr double kMsPerKm = 0.02;

double deg_to_rad(double deg) { return deg * std::numbers::pi / 180.0; }
}  // namespace

double haversine_km(const GeoPoint& a, const GeoPoint& b) {
  const double lat1 = deg_to_rad(a.latitude_deg);
  const double lat2 = deg_to_rad(b.latitude_deg);
  const double dlat = lat2 - lat1;
  const double dlon = deg_to_rad(b.longitude_deg - a.longitude_deg);
  const double h = std::sin(dlat / 2) * std::sin(dlat / 2) +
                   std::cos(lat1) * std::cos(lat2) * std::sin(dlon / 2) *
                       std::sin(dlon / 2);
  return 2.0 * kEarthRadiusKm * std::asin(std::min(1.0, std::sqrt(h)));
}

double propagation_latency_s(double distance_km) {
  UFC_EXPECTS(distance_km >= 0.0);
  return distance_km * kMsPerKm * 1e-3;
}

std::vector<GeoPoint> datacenter_sites() {
  return {
      {"Calgary", 51.045, -114.058},
      {"San Jose", 37.335, -121.893},
      {"Dallas", 32.777, -96.797},
      {"Pittsburgh", 40.441, -79.996},
  };
}

std::vector<GeoPoint> front_end_sites() {
  return {
      {"Seattle", 47.606, -122.333},
      {"Los Angeles", 34.052, -118.244},
      {"Phoenix", 33.448, -112.074},
      {"Denver", 39.739, -104.990},
      {"Houston", 29.760, -95.370},
      {"Chicago", 41.878, -87.630},
      {"Atlanta", 33.749, -84.388},
      {"Miami", 25.762, -80.192},
      {"New York", 40.713, -74.006},
      {"Washington DC", 38.907, -77.037},
  };
}

Mat latency_matrix_s(const std::vector<GeoPoint>& front_ends,
                     const std::vector<GeoPoint>& datacenters) {
  UFC_EXPECTS(!front_ends.empty());
  UFC_EXPECTS(!datacenters.empty());
  Mat latency(front_ends.size(), datacenters.size());
  for (std::size_t i = 0; i < front_ends.size(); ++i)
    for (std::size_t j = 0; j < datacenters.size(); ++j)
      latency(i, j) =
          propagation_latency_s(haversine_km(front_ends[i], datacenters[j]));
  return latency;
}

}  // namespace ufc::traces
