#include "traces/fuelmix.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/contract.hpp"

namespace ufc::traces {

namespace {

double midday_shape(int hour_of_day) {
  // Zero before 6am / after 6pm, peaking at noon.
  const double h = static_cast<double>(hour_of_day);
  if (h < 6.0 || h > 18.0) return 0.0;
  return std::sin((h - 6.0) / 12.0 * std::numbers::pi);
}

double night_shape(int hour_of_day) {
  // High at night (10pm - 8am), low midday.
  const double phase =
      2.0 * std::numbers::pi * (static_cast<double>(hour_of_day) - 3.0) / 24.0;
  return 0.5 * (1.0 + std::cos(phase));
}

double evening_peak_shape(int hour_of_day) {
  const double phase =
      2.0 * std::numbers::pi * (static_cast<double>(hour_of_day) - 17.0) / 24.0;
  return 0.5 * (1.0 + std::cos(phase));
}

std::size_t index(FuelType type) { return static_cast<std::size_t>(type); }

}  // namespace

std::vector<FuelMix> generate_fuel_mix(const FuelMixModelParams& params,
                                       int hours, Rng& rng) {
  UFC_EXPECTS(hours > 0);
  double base_total = 0.0;
  for (double s : params.base_shares) {
    UFC_EXPECTS(s >= 0.0);
    base_total += s;
  }
  UFC_EXPECTS(base_total > 0.0);

  std::vector<FuelMix> mixes(static_cast<std::size_t>(hours));
  for (int t = 0; t < hours; ++t) {
    const int hour = t % 24;
    FuelMix mix = params.base_shares;

    mix[index(FuelType::Wind)] += params.wind_night_boost * night_shape(hour);
    mix[index(FuelType::Solar)] += params.solar_day_share * midday_shape(hour);
    mix[index(FuelType::Gas)] += params.gas_peak_boost * evening_peak_shape(hour);

    double total = 0.0;
    for (auto& s : mix) {
      if (s > 0.0) s *= rng.log_normal(0.0, params.noise_sd);
      total += s;
    }
    for (auto& s : mix) s /= total;
    mixes[static_cast<std::size_t>(t)] = mix;
  }
  return mixes;
}

std::vector<double> carbon_rate_series(const std::vector<FuelMix>& mixes) {
  std::vector<double> rates;
  rates.reserve(mixes.size());
  for (const auto& mix : mixes) rates.push_back(carbon_rate_kg_per_mwh(mix));
  return rates;
}

FuelMixModelParams calgary_fuel_mix() {
  FuelMixModelParams p;
  p.region = "Calgary";
  p.base_shares[index(FuelType::Coal)] = 0.62;
  p.base_shares[index(FuelType::Gas)] = 0.28;
  p.base_shares[index(FuelType::Wind)] = 0.05;
  p.base_shares[index(FuelType::Hydro)] = 0.05;
  p.wind_night_boost = 0.04;
  p.gas_peak_boost = 0.06;
  return p;
}

FuelMixModelParams san_jose_fuel_mix() {
  FuelMixModelParams p;
  p.region = "San Jose";
  p.base_shares[index(FuelType::Gas)] = 0.45;
  p.base_shares[index(FuelType::Hydro)] = 0.22;
  p.base_shares[index(FuelType::Nuclear)] = 0.16;
  p.base_shares[index(FuelType::Wind)] = 0.09;
  p.base_shares[index(FuelType::Solar)] = 0.03;
  p.solar_day_share = 0.08;
  p.gas_peak_boost = 0.08;
  return p;
}

FuelMixModelParams dallas_fuel_mix() {
  FuelMixModelParams p;
  p.region = "Dallas";
  p.base_shares[index(FuelType::Gas)] = 0.46;
  p.base_shares[index(FuelType::Coal)] = 0.31;
  p.base_shares[index(FuelType::Wind)] = 0.12;
  p.base_shares[index(FuelType::Nuclear)] = 0.11;
  p.wind_night_boost = 0.20;
  p.gas_peak_boost = 0.08;
  return p;
}

FuelMixModelParams pittsburgh_fuel_mix() {
  FuelMixModelParams p;
  p.region = "Pittsburgh";
  p.base_shares[index(FuelType::Coal)] = 0.45;
  p.base_shares[index(FuelType::Nuclear)] = 0.34;
  p.base_shares[index(FuelType::Gas)] = 0.14;
  p.base_shares[index(FuelType::Hydro)] = 0.04;
  p.base_shares[index(FuelType::Wind)] = 0.03;
  p.gas_peak_boost = 0.05;
  return p;
}

std::vector<FuelMixModelParams> datacenter_fuel_mix_models() {
  return {calgary_fuel_mix(), san_jose_fuel_mix(), dallas_fuel_mix(),
          pittsburgh_fuel_mix()};
}

}  // namespace ufc::traces
