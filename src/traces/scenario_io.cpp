#include "traces/scenario_io.hpp"

#include "util/contract.hpp"
#include "util/csv.hpp"

namespace ufc::traces {

namespace {

std::vector<std::string> numbered_header(const std::string& first,
                                         const std::string& stem,
                                         std::size_t count) {
  std::vector<std::string> header{first};
  for (std::size_t k = 0; k < count; ++k)
    header.push_back(stem + std::to_string(k));
  return header;
}

}  // namespace

ScenarioCsvPaths scenario_csv_paths(const std::string& prefix) {
  return {prefix + "_workload.csv", prefix + "_prices.csv",
          prefix + "_carbon.csv", prefix + "_sites.csv"};
}

ScenarioCsvPaths save_scenario_csv(const Scenario& scenario,
                                   const std::string& prefix) {
  const auto paths = scenario_csv_paths(prefix);
  const std::size_t m = scenario.num_front_ends();
  const std::size_t n = scenario.num_datacenters();
  const auto hours = static_cast<std::size_t>(scenario.hours());

  {
    CsvWriter csv(paths.workload, numbered_header("hour", "fe", m));
    for (std::size_t t = 0; t < hours; ++t) {
      std::vector<double> row{static_cast<double>(t)};
      for (std::size_t i = 0; i < m; ++i)
        row.push_back(scenario.arrivals()(t, i));
      csv.row(row);
    }
  }
  {
    CsvWriter prices(paths.prices, numbered_header("hour", "dc", n));
    CsvWriter carbon(paths.carbon, numbered_header("hour", "dc", n));
    for (std::size_t t = 0; t < hours; ++t) {
      std::vector<double> price_row{static_cast<double>(t)};
      std::vector<double> carbon_row{static_cast<double>(t)};
      for (std::size_t j = 0; j < n; ++j) {
        price_row.push_back(scenario.prices()(t, j));
        carbon_row.push_back(scenario.carbon_rates()(t, j));
      }
      prices.row(price_row);
      carbon.row(carbon_row);
    }
  }
  {
    CsvWriter csv(paths.sites, numbered_header("servers", "latency_ms_fe", m));
    for (std::size_t j = 0; j < n; ++j) {
      std::vector<double> row{scenario.servers()[j]};
      for (std::size_t i = 0; i < m; ++i)
        row.push_back(1e3 * scenario.latency_s()(i, j));
      csv.row(row);
    }
  }
  return paths;
}

Scenario load_scenario_csv(const ScenarioCsvPaths& paths,
                           const ScenarioConfig& config) {
  const CsvTable workload = read_csv(paths.workload);
  const CsvTable prices = read_csv(paths.prices);
  const CsvTable carbon = read_csv(paths.carbon);
  const CsvTable sites = read_csv(paths.sites);

  const std::size_t hours = workload.num_rows();
  const std::size_t m = workload.num_columns() - 1;  // minus "hour"
  const std::size_t n = sites.num_rows();
  UFC_EXPECTS(hours > 0 && m > 0 && n > 0);
  UFC_EXPECTS(prices.num_rows() == hours && prices.num_columns() == n + 1);
  UFC_EXPECTS(carbon.num_rows() == hours && carbon.num_columns() == n + 1);
  UFC_EXPECTS(sites.num_columns() == m + 1);

  ExternalTraceData data;
  data.config = config;
  data.arrivals = Mat(hours, m);
  data.prices = Mat(hours, n);
  data.carbon_rates = Mat(hours, n);
  data.latency_s = Mat(m, n);
  for (std::size_t t = 0; t < hours; ++t) {
    for (std::size_t i = 0; i < m; ++i)
      data.arrivals(t, i) = workload.rows[t][i + 1];
    for (std::size_t j = 0; j < n; ++j) {
      data.prices(t, j) = prices.rows[t][j + 1];
      data.carbon_rates(t, j) = carbon.rows[t][j + 1];
    }
  }
  for (std::size_t j = 0; j < n; ++j) {
    data.servers.push_back(sites.rows[j][0]);
    data.datacenter_names.push_back("dc" + std::to_string(j));
    for (std::size_t i = 0; i < m; ++i)
      data.latency_s(i, j) = 1e-3 * sites.rows[j][i + 1];
  }
  return Scenario::from_data(std::move(data));
}

}  // namespace ufc::traces
