#include "traces/scenario.hpp"

#include "util/contract.hpp"

namespace ufc::traces {

Scenario Scenario::generate(const ScenarioConfig& config) {
  UFC_EXPECTS(config.hours > 0);
  UFC_EXPECTS(config.front_ends > 0);
  UFC_EXPECTS(config.server_capacity_low > 0.0);
  UFC_EXPECTS(config.server_capacity_high >= config.server_capacity_low);
  UFC_EXPECTS(config.peak_workload_fraction > 0.0 &&
              config.peak_workload_fraction <= 1.0);

  Scenario s;
  s.config_ = config;

  Rng master(config.seed);
  // Independent streams per concern so adding a knob never perturbs the
  // other traces.
  Rng capacity_rng = master.fork(1);
  Rng workload_rng = master.fork(2);
  Rng split_rng = master.fork(3);
  Rng price_rng = master.fork(4);
  Rng mix_rng = master.fork(5);

  const auto dc_sites = datacenter_sites();
  const auto fe_sites = front_end_sites();
  UFC_EXPECTS(static_cast<std::size_t>(config.front_ends) <= fe_sites.size());
  const std::vector<GeoPoint> front_ends(
      fe_sites.begin(), fe_sites.begin() + config.front_ends);

  for (const auto& site : dc_sites) s.datacenter_names_.push_back(site.name);
  const std::size_t n = dc_sites.size();

  // Server capacities: S_j ~ U[1.7e4, 2.3e4] (paper §IV-A).
  double total_capacity = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    s.servers_.push_back(capacity_rng.uniform(config.server_capacity_low,
                                              config.server_capacity_high));
    total_capacity += s.servers_.back();
  }

  // Workload: HP-like normalized trace, scaled to servers, split across
  // front-ends.
  const auto normalized =
      generate_workload(config.workload, config.hours, workload_rng);
  s.total_workload_ = scale_to_servers(normalized, total_capacity,
                                       config.peak_workload_fraction);
  s.arrivals_ =
      split_workload(s.total_workload_, config.front_ends, split_rng);

  // Prices and carbon rates per datacenter.
  const auto price_models = datacenter_price_models();
  const auto mix_models = datacenter_fuel_mix_models();
  UFC_EXPECTS(price_models.size() == n && mix_models.size() == n);
  s.prices_ = Mat(static_cast<std::size_t>(config.hours), n);
  s.carbon_rates_ = Mat(static_cast<std::size_t>(config.hours), n);
  for (std::size_t j = 0; j < n; ++j) {
    Rng pr = price_rng.fork(j);
    Rng mr = mix_rng.fork(j);
    const auto prices = generate_prices(price_models[j], config.hours, pr);
    const auto mixes = generate_fuel_mix(mix_models[j], config.hours, mr);
    const auto rates = carbon_rate_series(mixes);
    for (int t = 0; t < config.hours; ++t) {
      s.prices_(static_cast<std::size_t>(t), j) =
          prices[static_cast<std::size_t>(t)];
      s.carbon_rates_(static_cast<std::size_t>(t), j) =
          rates[static_cast<std::size_t>(t)];
    }
  }

  s.latency_s_ = latency_matrix_s(front_ends, dc_sites);
  s.emission_cost_ = std::make_shared<AffineCarbonTax>(config.carbon_tax);
  return s;
}

Scenario Scenario::from_data(ExternalTraceData data) {
  const std::size_t n = data.datacenter_names.size();
  const std::size_t m = data.arrivals.cols();
  const auto hours = data.arrivals.rows();
  UFC_EXPECTS(n > 0 && m > 0 && hours > 0);
  UFC_EXPECTS(data.servers.size() == n);
  UFC_EXPECTS(data.prices.rows() == hours && data.prices.cols() == n);
  UFC_EXPECTS(data.carbon_rates.rows() == hours &&
              data.carbon_rates.cols() == n);
  UFC_EXPECTS(data.latency_s.rows() == m && data.latency_s.cols() == n);
  for (double s : data.servers) UFC_EXPECTS(s > 0.0);
  for (double v : data.arrivals.raw()) UFC_EXPECTS(v >= 0.0);
  for (double v : data.prices.raw()) UFC_EXPECTS(v >= 0.0);
  for (double v : data.carbon_rates.raw()) UFC_EXPECTS(v >= 0.0);
  for (double v : data.latency_s.raw()) UFC_EXPECTS(v >= 0.0);

  Scenario s;
  s.config_ = data.config;
  s.config_.hours = static_cast<int>(hours);
  s.config_.front_ends = static_cast<int>(m);
  s.datacenter_names_ = std::move(data.datacenter_names);
  s.servers_ = std::move(data.servers);
  s.arrivals_ = std::move(data.arrivals);
  s.prices_ = std::move(data.prices);
  s.carbon_rates_ = std::move(data.carbon_rates);
  s.latency_s_ = std::move(data.latency_s);
  s.total_workload_.resize(hours);
  for (std::size_t t = 0; t < hours; ++t)
    s.total_workload_[t] = s.arrivals_.row_sum(t);
  s.emission_cost_ = std::make_shared<AffineCarbonTax>(s.config_.carbon_tax);
  return s;
}

UfcProblem Scenario::problem_at(int t) const {
  UFC_EXPECTS(t >= 0 && t < config_.hours);
  const auto slot = static_cast<std::size_t>(t);

  UfcProblem problem;
  problem.power = config_.power;
  problem.fuel_cell_price = config_.fuel_cell_price;
  problem.latency_weight = config_.latency_weight;
  problem.utility = std::make_shared<QuadraticUtility>();
  problem.latency_s = latency_s_;

  for (std::size_t j = 0; j < num_datacenters(); ++j) {
    DatacenterSpec dc;
    dc.name = datacenter_names_[j];
    dc.servers = servers_[j];
    dc.pue = config_.pue;
    dc.grid_price = prices_(slot, j);
    dc.carbon_rate = carbon_rates_(slot, j);
    // "All four datacenters can be completely powered by fuel cell
    // generation": mu_max = P_peak * S_j * PUE (paper §IV-A).
    dc.fuel_cell_capacity_mw = config_.power.peak_watts * dc.servers *
                               dc.pue / kWattsPerMegawatt;
    dc.emission_cost = emission_cost_;
    problem.datacenters.push_back(std::move(dc));
  }

  problem.arrivals.resize(num_front_ends());
  for (std::size_t i = 0; i < num_front_ends(); ++i)
    problem.arrivals[i] = arrivals_(slot, i);

  problem.validate();
  return problem;
}

ScenarioConfig scenario_config_from(const Config& config) {
  ScenarioConfig scenario;
  scenario.seed = static_cast<std::uint64_t>(
      config.get_int("scenario.seed", static_cast<int>(scenario.seed)));
  scenario.hours = config.get_int("scenario.hours", scenario.hours);
  scenario.front_ends =
      config.get_int("scenario.front_ends", scenario.front_ends);
  scenario.pue = config.get_double("scenario.pue", scenario.pue);
  scenario.peak_workload_fraction = config.get_double(
      "scenario.peak_workload_fraction", scenario.peak_workload_fraction);
  scenario.fuel_cell_price =
      config.get_double("scenario.fuel_cell_price", scenario.fuel_cell_price);
  scenario.carbon_tax =
      config.get_double("scenario.carbon_tax", scenario.carbon_tax);
  scenario.latency_weight =
      config.get_double("scenario.latency_weight", scenario.latency_weight);
  scenario.server_capacity_low = config.get_double(
      "scenario.server_capacity_low", scenario.server_capacity_low);
  scenario.server_capacity_high = config.get_double(
      "scenario.server_capacity_high", scenario.server_capacity_high);
  return scenario;
}

SingleSiteData generate_single_site_data(std::uint64_t seed, int hours) {
  Rng master(seed);
  Rng demand_rng = master.fork(11);
  Rng dallas_rng = master.fork(12);
  Rng sj_rng = master.fork(13);

  SingleSiteData data;
  data.demand_mw = generate_power_demand_mw(DemandModelParams{}, hours,
                                            demand_rng);
  data.dallas_price = generate_prices(dallas_prices(), hours, dallas_rng);
  data.san_jose_price = generate_prices(san_jose_prices(), hours, sj_rng);
  return data;
}

}  // namespace ufc::traces
