// Geography substrate: real city coordinates, great-circle distances and the
// paper's distance-to-latency law L_ij = 0.02 ms/km * d_ij (§II-B3).
//
// The paper reads distances off mapping applications; we compute haversine
// distances from published city coordinates, which agree to within a few
// percent — well inside the model's own approximation error.
#pragma once

#include <string>
#include <vector>

#include "math/matrix.hpp"

namespace ufc::traces {

struct GeoPoint {
  std::string name;
  double latitude_deg = 0.0;
  double longitude_deg = 0.0;
};

/// Great-circle distance in kilometers (haversine, mean Earth radius).
double haversine_km(const GeoPoint& a, const GeoPoint& b);

/// The paper's empirical law: 1 km of geographic distance adds ~0.02 ms of
/// propagation latency. Returns seconds.
double propagation_latency_s(double distance_km);

/// The four datacenter sites of the paper's simulation setup.
std::vector<GeoPoint> datacenter_sites();

/// Ten front-end proxy locations scattered across the continental US
/// (the paper places M = 10 front-ends "uniformly scattered").
std::vector<GeoPoint> front_end_sites();

/// Latency matrix in seconds: rows = front-ends, cols = datacenters.
Mat latency_matrix_s(const std::vector<GeoPoint>& front_ends,
                     const std::vector<GeoPoint>& datacenters);

}  // namespace ufc::traces
