#include "traces/forecast.hpp"

#include <cmath>

#include "util/contract.hpp"

namespace ufc::traces {

std::vector<double> seasonal_naive_forecast(std::span<const double> series,
                                            int period) {
  UFC_EXPECTS(!series.empty());
  UFC_EXPECTS(period > 0);
  std::vector<double> forecast(series.size());
  for (std::size_t t = 0; t < series.size(); ++t) {
    forecast[t] = t >= static_cast<std::size_t>(period)
                      ? series[t - static_cast<std::size_t>(period)]
                      : series[0];
  }
  return forecast;
}

std::vector<double> holt_winters_forecast(std::span<const double> series,
                                          const HoltWintersParams& params) {
  const auto period = static_cast<std::size_t>(params.period);
  UFC_EXPECTS(params.period > 0);
  UFC_EXPECTS(series.size() >= 2 * period);
  UFC_EXPECTS(params.alpha > 0.0 && params.alpha < 1.0);
  UFC_EXPECTS(params.beta >= 0.0 && params.beta < 1.0);
  UFC_EXPECTS(params.gamma >= 0.0 && params.gamma < 1.0);

  // Initialization from the first two seasons (classic Holt-Winters):
  // level = mean of season 1, trend = average per-step change between the
  // two seasonal means, seasonal = deviation of season 1 from its mean.
  double season1_mean = 0.0;
  double season2_mean = 0.0;
  for (std::size_t k = 0; k < period; ++k) {
    season1_mean += series[k];
    season2_mean += series[period + k];
  }
  season1_mean /= static_cast<double>(period);
  season2_mean /= static_cast<double>(period);

  double level = season1_mean;
  double trend = (season2_mean - season1_mean) / static_cast<double>(period);
  std::vector<double> seasonal(period);
  for (std::size_t k = 0; k < period; ++k)
    seasonal[k] = series[k] - season1_mean;

  // Warm-up window reports seasonal-naive forecasts.
  std::vector<double> forecast = seasonal_naive_forecast(series, params.period);

  for (std::size_t t = period; t < series.size(); ++t) {
    const std::size_t s = t % period;
    forecast[t] = level + trend + seasonal[s];
    const double y = series[t];
    const double previous_level = level;
    level = params.alpha * (y - seasonal[s]) +
            (1.0 - params.alpha) * (level + trend);
    trend = params.beta * (level - previous_level) +
            (1.0 - params.beta) * trend;
    seasonal[s] = params.gamma * (y - level) +
                  (1.0 - params.gamma) * seasonal[s];
  }
  return forecast;
}

double mape(std::span<const double> actual, std::span<const double> forecast,
            std::size_t skip) {
  UFC_EXPECTS(actual.size() == forecast.size());
  UFC_EXPECTS(skip < actual.size());
  double total = 0.0;
  std::size_t count = 0;
  for (std::size_t t = skip; t < actual.size(); ++t) {
    // ufc-lint: allow(float-equal) — exact-zero guard: MAPE is undefined
    // at zero actuals, so those hours are skipped by definition.
    if (actual[t] == 0.0) continue;
    total += std::abs((forecast[t] - actual[t]) / actual[t]);
    ++count;
  }
  UFC_EXPECTS(count > 0);
  return total / static_cast<double>(count);
}

double rmse(std::span<const double> actual, std::span<const double> forecast,
            std::size_t skip) {
  UFC_EXPECTS(actual.size() == forecast.size());
  UFC_EXPECTS(skip < actual.size());
  double total = 0.0;
  for (std::size_t t = skip; t < actual.size(); ++t) {
    const double e = forecast[t] - actual[t];
    total += e * e;
  }
  return std::sqrt(total / static_cast<double>(actual.size() - skip));
}

}  // namespace ufc::traces
