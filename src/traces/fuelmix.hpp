// Synthetic hourly electricity fuel-mix traces per region and the resulting
// carbon emission rates via the paper's eq. (1) with Table III factors
// (substitution for the authors' RTO/ISO generation downloads; DESIGN.md §4).
//
// Each region has characteristic base shares (Alberta coal-heavy, PJM
// coal+nuclear, ERCOT gas+wind, CAISO gas+hydro+solar) plus diurnal
// modulation: wind blows at night in Texas, solar produces at midday in
// California, dispatchable gas follows the daily load peak everywhere.
#pragma once

#include <string>
#include <vector>

#include "model/emission.hpp"
#include "util/rng.hpp"

namespace ufc::traces {

struct FuelMixModelParams {
  std::string region;
  /// Base share per fuel type (indexed by model::FuelType); need not sum to
  /// one — shares are renormalized each hour after modulation.
  FuelMix base_shares{};
  double wind_night_boost = 0.0;   ///< Extra wind share at night.
  double solar_day_share = 0.0;    ///< Peak midday solar share.
  double gas_peak_boost = 0.0;     ///< Extra gas share at the demand peak.
  double noise_sd = 0.05;          ///< Log-normal share jitter.
};

/// Generates `hours` hourly fuel mixes (shares, renormalized to sum to 1).
std::vector<FuelMix> generate_fuel_mix(const FuelMixModelParams& params,
                                       int hours, Rng& rng);

/// Carbon rate series (kg/MWh) for a fuel-mix series via eq. (1).
std::vector<double> carbon_rate_series(const std::vector<FuelMix>& mixes);

/// Region presets in the paper's datacenter order.
FuelMixModelParams calgary_fuel_mix();     ///< AESO: coal-heavy (~750 kg/MWh).
FuelMixModelParams san_jose_fuel_mix();    ///< CAISO: gas+hydro+solar (~250).
FuelMixModelParams dallas_fuel_mix();      ///< ERCOT: gas+coal+wind (~500).
FuelMixModelParams pittsburgh_fuel_mix();  ///< PJM: coal+nuclear (~520).

std::vector<FuelMixModelParams> datacenter_fuel_mix_models();

}  // namespace ufc::traces
