#include "model/emission.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contract.hpp"

namespace ufc {

AffineCarbonTax::AffineCarbonTax(double rate_per_ton) : rate_(rate_per_ton) {
  UFC_EXPECTS(rate_per_ton >= 0.0);
}

double AffineCarbonTax::value(double tons) const { return rate_ * tons; }

double AffineCarbonTax::derivative(double /*tons*/) const { return rate_; }

std::unique_ptr<EmissionCostFunction> AffineCarbonTax::clone() const {
  return std::make_unique<AffineCarbonTax>(*this);
}

CapAndTradeCost::CapAndTradeCost(double cap_tons, double permit_price_per_ton)
    : cap_(cap_tons), permit_price_(permit_price_per_ton) {
  UFC_EXPECTS(cap_tons >= 0.0);
  UFC_EXPECTS(permit_price_per_ton >= 0.0);
}

double CapAndTradeCost::value(double tons) const {
  return permit_price_ * std::max(0.0, tons - cap_);
}

double CapAndTradeCost::derivative(double tons) const {
  // Right-derivative selection at the kink keeps the map monotone.
  return tons >= cap_ ? permit_price_ : 0.0;
}

std::unique_ptr<EmissionCostFunction> CapAndTradeCost::clone() const {
  return std::make_unique<CapAndTradeCost>(*this);
}

SteppedCarbonTax::SteppedCarbonTax(std::vector<double> thresholds,
                                   std::vector<double> rates)
    : thresholds_(std::move(thresholds)), rates_(std::move(rates)) {
  UFC_EXPECTS(!rates_.empty());
  UFC_EXPECTS(thresholds_.size() + 1 == rates_.size());
  UFC_EXPECTS(std::is_sorted(thresholds_.begin(), thresholds_.end()));
  for (std::size_t k = 0; k < thresholds_.size(); ++k) {
    UFC_EXPECTS(thresholds_[k] >= 0.0);
    if (k + 1 < thresholds_.size())
      UFC_EXPECTS(thresholds_[k] < thresholds_[k + 1]);
  }
  // Non-decreasing marginal rates => convexity.
  UFC_EXPECTS(std::is_sorted(rates_.begin(), rates_.end()));
  UFC_EXPECTS(rates_.front() >= 0.0);
}

double SteppedCarbonTax::value(double tons) const {
  if (tons <= 0.0) return 0.0;
  double total = 0.0;
  double lower = 0.0;
  for (std::size_t k = 0; k < rates_.size(); ++k) {
    const double upper =
        (k < thresholds_.size()) ? thresholds_[k]
                                 : std::numeric_limits<double>::infinity();
    const double span = std::min(tons, upper) - lower;
    if (span <= 0.0) break;
    total += rates_[k] * span;
    lower = upper;
  }
  return total;
}

double SteppedCarbonTax::derivative(double tons) const {
  for (std::size_t k = 0; k < thresholds_.size(); ++k) {
    if (tons < thresholds_[k]) return rates_[k];
  }
  return rates_.back();
}

std::unique_ptr<EmissionCostFunction> SteppedCarbonTax::clone() const {
  return std::make_unique<SteppedCarbonTax>(*this);
}

QuadraticEmissionCost::QuadraticEmissionCost(double linear_per_ton,
                                             double quadratic_per_ton2)
    : linear_(linear_per_ton), quadratic_(quadratic_per_ton2) {
  UFC_EXPECTS(linear_per_ton >= 0.0);
  UFC_EXPECTS(quadratic_per_ton2 >= 0.0);
}

double QuadraticEmissionCost::value(double tons) const {
  return linear_ * tons + quadratic_ * tons * tons;
}

double QuadraticEmissionCost::derivative(double tons) const {
  return linear_ + 2.0 * quadratic_ * tons;
}

std::unique_ptr<EmissionCostFunction> QuadraticEmissionCost::clone() const {
  return std::make_unique<QuadraticEmissionCost>(*this);
}

double fuel_carbon_factor(FuelType type) {
  // Paper Table III (g CO2 / kWh); solar from common LCA estimates.
  switch (type) {
    case FuelType::Nuclear: return 15.0;
    case FuelType::Coal:    return 968.0;
    case FuelType::Gas:     return 440.0;
    case FuelType::Oil:     return 890.0;
    case FuelType::Hydro:   return 13.5;
    case FuelType::Wind:    return 22.5;
    case FuelType::Solar:   return 45.0;
  }
  return 0.0;
}

double carbon_rate_kg_per_mwh(const FuelMix& mix) {
  double total = 0.0;
  double weighted = 0.0;
  for (std::size_t k = 0; k < kFuelTypeCount; ++k) {
    UFC_EXPECTS(mix[k] >= 0.0);
    total += mix[k];
    weighted += mix[k] * fuel_carbon_factor(static_cast<FuelType>(k));
  }
  UFC_EXPECTS(total > 0.0);
  return weighted / total;  // g/kWh == kg/MWh
}

}  // namespace ufc
