// Complementary datacenter indexes (paper §II-B): PUE, CUE and ERP.
//
// The paper positions UFC against the established single-facility indexes —
// PUE (Power Usage Effectiveness), CUE (Carbon Usage Effectiveness) and ERP
// (Energy-Response-time Product) — arguing none of them captures the joint
// cost/carbon/performance picture for a geo-distributed cloud. We implement
// all three so experiments can show where the rankings disagree.
#pragma once

#include "math/matrix.hpp"
#include "math/vector.hpp"
#include "model/problem.hpp"

namespace ufc {

struct IndexMetrics {
  /// Fleet-level PUE: total facility energy / IT-equipment energy.
  double pue = 0.0;
  /// CUE: grid-side CO2 (kg) per kWh of IT energy (The Green Grid metric).
  double cue_kg_per_kwh = 0.0;
  /// ERP: average power draw (kW) x request-weighted mean latency (s)
  /// (Gandhi et al., Performance Evaluation 2010).
  double erp_kws = 0.0;
  /// Total IT-equipment energy this slot, MWh.
  double it_energy_mwh = 0.0;
};

/// Computes PUE / CUE / ERP at an operating point (lambda, mu).
IndexMetrics complementary_indexes(const UfcProblem& problem,
                                   const Mat& lambda, const Vec& mu);

}  // namespace ufc
