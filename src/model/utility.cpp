#include "model/utility.hpp"

#include <cmath>

#include "util/contract.hpp"

namespace ufc {

double QuadraticUtility::value(double latency_s) const {
  return -latency_s * latency_s;
}

double QuadraticUtility::derivative(double latency_s) const {
  return -2.0 * latency_s;
}

double QuadraticUtility::max_curvature(double /*latency_max_s*/) const {
  return 2.0;
}

std::unique_ptr<UtilityFunction> QuadraticUtility::clone() const {
  return std::make_unique<QuadraticUtility>(*this);
}

double LinearUtility::value(double latency_s) const { return -latency_s; }

double LinearUtility::derivative(double /*latency_s*/) const { return -1.0; }

double LinearUtility::max_curvature(double /*latency_max_s*/) const {
  return 0.0;
}

std::unique_ptr<UtilityFunction> LinearUtility::clone() const {
  return std::make_unique<LinearUtility>(*this);
}

ExponentialUtility::ExponentialUtility(double theta_s) : theta_(theta_s) {
  UFC_EXPECTS(theta_s > 0.0);
}

double ExponentialUtility::value(double latency_s) const {
  return -(std::exp(latency_s / theta_) - 1.0);
}

double ExponentialUtility::derivative(double latency_s) const {
  return -std::exp(latency_s / theta_) / theta_;
}

double ExponentialUtility::max_curvature(double latency_max_s) const {
  UFC_EXPECTS(latency_max_s >= 0.0);
  return std::exp(latency_max_s / theta_) / (theta_ * theta_);
}

std::unique_ptr<UtilityFunction> ExponentialUtility::clone() const {
  return std::make_unique<ExponentialUtility>(*this);
}

}  // namespace ufc
