// Datacenter power-demand model (paper §II-B1).
//
// The aggregate server power of S_j homogeneous active servers handling
// workload sum_i lambda_ij ("servers required" units) is linear:
//
//     D_j = ( S_j * P_idle + (P_peak - P_idle) * sum_i lambda_ij ) * PUE_j
//         = alpha_j + beta_j * sum_i lambda_ij           [watts]
//
// We work in megawatts throughout so that with 1-hour slots, energy in MWh
// is numerically equal to power in MW and prices in $/MWh apply directly.
#pragma once

namespace ufc {

/// Homogeneous-server power envelope, in watts.
struct ServerPowerModel {
  double idle_watts = 100.0;  ///< P_idle — the paper's setting.
  double peak_watts = 200.0;  ///< P_peak — the paper's setting.
};

inline constexpr double kWattsPerMegawatt = 1e6;

/// alpha_j = S_j * P_idle * PUE_j, in MW.
double power_alpha_mw(double servers, const ServerPowerModel& model,
                      double pue);

/// beta_j = (P_peak - P_idle) * PUE_j, in MW per unit of workload.
double power_beta_mw(const ServerPowerModel& model, double pue);

/// Total demand alpha + beta * workload, in MW.
double power_demand_mw(double servers, const ServerPowerModel& model,
                       double pue, double workload);

}  // namespace ufc
