// The single-slot UFC maximization instance (paper §II-C, problem (3)).
//
// A UfcProblem bundles everything problem (3) needs for one time slot:
// datacenter parameters (capacity, PUE, grid price p_j, carbon rate C_j,
// fuel-cell capacity mu_max_j, emission cost V_j), front-end arrivals A_i,
// the latency matrix L_ij, the fuel-cell price p_0, the latency weight w and
// the utility shape U.
//
// Decision variables:
//   lambda  (M x N)  requests routed from front-end i to datacenter j
//   mu      (N)      fuel-cell generation, MW
//   nu      (N)      grid draw, MW: nu_j = alpha_j + beta_j sum_i lambda_ij - mu_j
//
// Units: power MW, energy MWh (1-hour slots), prices $/MWh, carbon rate
// kg/MWh, emissions tons, latency seconds, workload "servers required".
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "math/matrix.hpp"
#include "math/vector.hpp"
#include "model/emission.hpp"
#include "model/power.hpp"
#include "model/utility.hpp"

namespace ufc {

/// Static description of one datacenter for one slot.
struct DatacenterSpec {
  std::string name;
  double servers = 0.0;                ///< S_j, capacity in servers.
  double pue = 1.2;                    ///< Power usage effectiveness.
  double grid_price = 0.0;             ///< p_j, $/MWh, this slot.
  double carbon_rate = 0.0;            ///< C_j, kg CO2 per MWh, this slot.
  double fuel_cell_capacity_mw = 0.0;  ///< mu_max_j, MW.
  /// V_j; shared so specs stay cheaply copyable. Must not be null.
  std::shared_ptr<const EmissionCostFunction> emission_cost;
  /// Heterogeneous-fleet extension (paper §II-A: the model "can be easily
  /// extended to capture the heterogeneous case"): a per-datacenter server
  /// power envelope overriding UfcProblem::power when set.
  std::optional<ServerPowerModel> power_override;
};

/// One slot of the UFC maximization problem.
struct UfcProblem {
  std::vector<DatacenterSpec> datacenters;  ///< size N
  std::vector<double> arrivals;             ///< A_i, size M, servers
  Mat latency_s;                            ///< L_ij, M x N, seconds
  double fuel_cell_price = 80.0;            ///< p_0, $/MWh
  double latency_weight = 10.0;             ///< w, $/s^2
  std::shared_ptr<const UtilityFunction> utility;  ///< U's shape u(l)
  ServerPowerModel power;                   ///< P_idle / P_peak

  std::size_t num_datacenters() const { return datacenters.size(); }
  std::size_t num_front_ends() const { return arrivals.size(); }

  /// The server power envelope in effect at datacenter j (override or the
  /// fleet-wide default).
  const ServerPowerModel& power_at(std::size_t j) const;

  /// alpha_j in MW (idle power of all servers, PUE-scaled).
  double alpha_mw(std::size_t j) const;
  /// beta_j in MW per unit workload.
  double beta_mw(std::size_t j) const;
  /// alpha_j + beta_j * workload, MW.
  double demand_mw(std::size_t j, double workload) const;

  double total_arrivals() const;
  double total_server_capacity() const;
  /// Largest entry of the latency matrix (for Lipschitz bounds), seconds.
  double max_latency_s() const;

  /// Request-weighted average latency at front-end i for routing row
  /// lambda_i, in seconds. Zero-arrival front-ends report zero.
  double average_latency_s(std::size_t i, const Vec& lambda_row) const;

  /// Throws ContractViolation if the instance is malformed or infeasible
  /// (e.g. null function pointers, negative arrivals, total arrivals
  /// exceeding total server capacity, dimension mismatches).
  void validate() const;
};

/// A candidate operating point. nu is derived but stored for inspection.
struct UfcSolution {
  Mat lambda;  ///< M x N routing.
  Vec mu;      ///< N fuel-cell outputs, MW.
  Vec nu;      ///< N grid draws, MW.
};

/// Computes nu_j = alpha_j + beta_j sum_i lambda_ij - mu_j for all j.
Vec grid_draw_mw(const UfcProblem& problem, const Mat& lambda, const Vec& mu);

/// Maximum violation of all constraints (4)-(6) plus variable bounds, for
/// feasibility checks; 0 for exactly feasible points.
double constraint_violation(const UfcProblem& problem, const Mat& lambda,
                            const Vec& mu);

}  // namespace ufc
