#include "model/queueing.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/contract.hpp"

namespace ufc {

double erlang_c_wait_probability(double offered_load, double servers) {
  UFC_EXPECTS(offered_load >= 0.0);
  UFC_EXPECTS(servers > 0.0);
  UFC_EXPECTS(offered_load < servers);
  // ufc-lint: allow(float-equal) — exact-zero guard before the recurrence.
  if (offered_load == 0.0) return 0.0;

  // Stable recurrence for the Erlang-B blocking probability:
  //   B(0) = 1;  B(k) = a B(k-1) / (k + a B(k-1)),
  // then C = B / (1 - rho (1 - B)) with rho = a / c. Fractional server
  // counts interpolate the recurrence's last step, which is standard
  // practice for fluid fleets.
  const double a = offered_load;
  const auto whole = static_cast<std::size_t>(servers);
  double blocking = 1.0;
  for (std::size_t k = 1; k <= whole; ++k) {
    blocking = a * blocking / (static_cast<double>(k) + a * blocking);
  }
  const double frac = servers - static_cast<double>(whole);
  if (frac > 0.0) {
    blocking = a * blocking / (static_cast<double>(whole) + frac + a * blocking);
  }
  const double rho = a / servers;
  const double wait = blocking / (1.0 - rho * (1.0 - blocking));
  return std::clamp(wait, 0.0, 1.0);
}

double mmc_mean_wait_s(double lambda_rate, double mu_rate, double servers) {
  UFC_EXPECTS(lambda_rate >= 0.0);
  UFC_EXPECTS(mu_rate > 0.0);
  UFC_EXPECTS(servers > 0.0);
  const double offered = lambda_rate / mu_rate;
  if (offered >= servers) return std::numeric_limits<double>::infinity();
  // ufc-lint: allow(float-equal) — exact-zero guard: no arrivals, no wait.
  if (lambda_rate == 0.0) return 0.0;
  const double wait_probability = erlang_c_wait_probability(offered, servers);
  return wait_probability / (servers * mu_rate - lambda_rate);
}

QueueingAssessment assess_queueing(const UfcProblem& problem,
                                   const Mat& lambda,
                                   const QueueingModelParams& params) {
  UFC_EXPECTS(lambda.rows() == problem.num_front_ends());
  UFC_EXPECTS(lambda.cols() == problem.num_datacenters());
  UFC_EXPECTS(params.service_rate_per_server > 0.0);
  UFC_EXPECTS(params.utilization_cap > 0.0 && params.utilization_cap < 1.0);

  QueueingAssessment out;

  // Per-datacenter mean wait. One workload unit = one server's worth of
  // offered load, so lambda_rate = load * service_rate.
  std::vector<double> wait_s(problem.num_datacenters(), 0.0);
  for (std::size_t j = 0; j < problem.num_datacenters(); ++j) {
    const double servers = problem.datacenters[j].servers;
    double load = lambda.col_sum(j);
    const double cap = params.utilization_cap * servers;
    if (load > cap) {
      out.stable = false;
      load = cap;
    }
    wait_s[j] = mmc_mean_wait_s(load * params.service_rate_per_server,
                                params.service_rate_per_server, servers);
  }

  double weighted_propagation = 0.0;
  double weighted_queueing = 0.0;
  double total = 0.0;
  for (std::size_t i = 0; i < problem.num_front_ends(); ++i) {
    for (std::size_t j = 0; j < problem.num_datacenters(); ++j) {
      const double flow = std::max(0.0, lambda(i, j));
      weighted_propagation += flow * problem.latency_s(i, j);
      weighted_queueing += flow * wait_s[j];
      total += flow;
    }
  }
  if (total > 0.0) {
    out.avg_propagation_ms = 1e3 * weighted_propagation / total;
    out.avg_queueing_ms = 1e3 * weighted_queueing / total;
  }
  const double sum = out.avg_propagation_ms + out.avg_queueing_ms;
  out.queueing_share = sum > 0.0 ? out.avg_queueing_ms / sum : 0.0;
  return out;
}

}  // namespace ufc
