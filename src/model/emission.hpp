// Carbon-emission cost functions V_j(E) (paper §II-B2) and the electricity
// carbon-rate computation of eq. (1).
//
// E is the grid-side carbon emission in metric tons per slot; V_j maps it to
// a monetary cost. The paper only requires V_j to be non-decreasing and
// convex — and explicitly studies non-strongly-convex policies (affine
// carbon taxes, linear cap-and-trade, stepped taxes), which is why its
// solver is ADM-G rather than plain multi-block ADMM.
#pragma once

#include <array>
#include <memory>
#include <span>
#include <string>
#include <vector>

namespace ufc {

/// Convex non-decreasing monetary emission cost V(E), E in tons.
class EmissionCostFunction {
 public:
  virtual ~EmissionCostFunction() = default;

  /// V(E) in dollars. Must be convex and non-decreasing for E >= 0.
  virtual double value(double tons) const = 0;

  /// A subgradient selection dV/dE (monotone non-decreasing in E).
  virtual double derivative(double tons) const = 0;

  virtual std::string name() const = 0;
  virtual std::unique_ptr<EmissionCostFunction> clone() const = 0;
};

/// Flat carbon tax: V(E) = rate * E  (e.g. Australia's $23AUD/ton scheme).
class AffineCarbonTax final : public EmissionCostFunction {
 public:
  explicit AffineCarbonTax(double rate_per_ton);
  double value(double tons) const override;
  double derivative(double tons) const override;
  std::string name() const override { return "affine-tax"; }
  std::unique_ptr<EmissionCostFunction> clone() const override;

  double rate() const { return rate_; }

 private:
  double rate_;
};

/// Cap-and-trade: free up to the cap, permits at `permit_price` beyond it:
/// V(E) = permit_price * max(0, E - cap). Convex piecewise linear.
class CapAndTradeCost final : public EmissionCostFunction {
 public:
  CapAndTradeCost(double cap_tons, double permit_price_per_ton);
  double value(double tons) const override;
  double derivative(double tons) const override;
  std::string name() const override { return "cap-and-trade"; }
  std::unique_ptr<EmissionCostFunction> clone() const override;

  double cap() const { return cap_; }
  double permit_price() const { return permit_price_; }

 private:
  double cap_;
  double permit_price_;
};

/// Stepped (progressive) tax: marginal rate rates[k] applies inside
/// (thresholds[k-1], thresholds[k]]; rates must be non-decreasing so the
/// total is convex. thresholds must be strictly increasing, the last
/// bracket is unbounded.
class SteppedCarbonTax final : public EmissionCostFunction {
 public:
  /// `thresholds` has one fewer entry than `rates`.
  SteppedCarbonTax(std::vector<double> thresholds, std::vector<double> rates);
  double value(double tons) const override;
  double derivative(double tons) const override;
  std::string name() const override { return "stepped-tax"; }
  std::unique_ptr<EmissionCostFunction> clone() const override;

 private:
  std::vector<double> thresholds_;
  std::vector<double> rates_;
};

/// Quadratic offset cost: V(E) = linear * E + quadratic * E^2, modelling
/// offset projects whose marginal price rises with volume. Strongly convex
/// when quadratic > 0.
class QuadraticEmissionCost final : public EmissionCostFunction {
 public:
  QuadraticEmissionCost(double linear_per_ton, double quadratic_per_ton2);
  double value(double tons) const override;
  double derivative(double tons) const override;
  std::string name() const override { return "quadratic"; }
  std::unique_ptr<EmissionCostFunction> clone() const override;

 private:
  double linear_;
  double quadratic_;
};

// ---------------------------------------------------------------------------
// Electricity carbon rate (paper eq. (1) and Table III).

/// Fuel types of the paper's Table III.
enum class FuelType { Nuclear, Coal, Gas, Oil, Hydro, Wind, Solar };

inline constexpr std::size_t kFuelTypeCount = 7;

/// CO2 grams per kWh for each fuel type. Table III of the paper gives the
/// first six; solar (not in the table) uses the commonly cited 45 g/kWh.
double fuel_carbon_factor(FuelType type);

/// One region-hour of generation, in MWh per fuel type.
using FuelMix = std::array<double, kFuelTypeCount>;

/// Paper eq. (1): weighted average carbon rate of a fuel mix, in kg/MWh
/// (numerically equal to g/kWh). Requires a strictly positive total.
double carbon_rate_kg_per_mwh(const FuelMix& mix);

}  // namespace ufc
