// Queueing-delay validation (paper §II-B3).
//
// The paper models only WAN propagation latency, asserting it "largely
// accounts for the user-perceived latency and overweighs other factors such
// as queuing or processing delays in datacenters". This module makes that
// assumption checkable: it estimates the in-datacenter queueing delay of an
// operating point with an M/M/c model (Erlang-C waiting probability over
// the active servers) and compares it with the propagation component.
#pragma once

#include "math/matrix.hpp"
#include "model/problem.hpp"

namespace ufc {

/// Erlang-C: probability that an arriving job waits in an M/M/c queue with
/// offered load `a = lambda/mu` Erlangs and `c` servers. Requires a < c.
/// Computed with the standard numerically-stable recurrence.
double erlang_c_wait_probability(double offered_load, double servers);

/// Mean M/M/c waiting time (seconds) for per-server service rate `mu_rate`
/// (jobs/second), arrival rate `lambda_rate` (jobs/second) and `c` servers.
/// Returns +inf if the queue is unstable (offered load >= c).
double mmc_mean_wait_s(double lambda_rate, double mu_rate, double servers);

struct QueueingAssessment {
  double avg_propagation_ms = 0.0;  ///< Request-weighted WAN latency.
  double avg_queueing_ms = 0.0;     ///< Request-weighted M/M/c wait.
  /// queueing / (queueing + propagation); the paper's assumption holds when
  /// this is small.
  double queueing_share = 0.0;
  bool stable = true;  ///< False if any datacenter's queue is unstable.
};

struct QueueingModelParams {
  /// Per-server service rate, jobs per second. The workload unit "one
  /// server's worth of requests" corresponds to an offered load of 1 Erlang
  /// per unit, so the default keeps that calibration and only sets the time
  /// scale of a job (50 ms service time).
  double service_rate_per_server = 20.0;
  /// Fraction of each datacenter's servers kept as queueing headroom
  /// (utilization cap). The paper's capacity constraint allows 100%
  /// utilization, where M/M/c diverges; real operators cap below 1.
  double utilization_cap = 0.98;
};

/// Assesses queueing vs propagation delay at an operating point. Each
/// datacenter is treated as an M/M/c system with c = S_j servers and
/// offered load sum_i lambda_ij (capped at utilization_cap * c for the
/// estimate; `stable` reports whether the cap had to bind).
QueueingAssessment assess_queueing(const UfcProblem& problem,
                                   const Mat& lambda,
                                   const QueueingModelParams& params = {});

}  // namespace ufc
