#include "model/breakdown.hpp"

#include <algorithm>
#include <cmath>

#include "util/contract.hpp"

namespace ufc {

namespace {
constexpr double kKgPerTon = 1000.0;
}

UfcBreakdown evaluate(const UfcProblem& problem, const Mat& lambda,
                      const Vec& mu) {
  UFC_EXPECTS(lambda.rows() == problem.num_front_ends());
  UFC_EXPECTS(lambda.cols() == problem.num_datacenters());
  UFC_EXPECTS(mu.size() == problem.num_datacenters());

  UfcBreakdown out;

  // Workload utility.
  double latency_weighted = 0.0;
  for (std::size_t i = 0; i < problem.num_front_ends(); ++i) {
    const Vec row = lambda.row(i);
    const double avg_latency = problem.average_latency_s(i, row);
    out.utility += problem.latency_weight * problem.arrivals[i] *
                   problem.utility->value(avg_latency);
    latency_weighted += problem.arrivals[i] * avg_latency;
  }
  const double total_arrivals = problem.total_arrivals();
  out.avg_latency_ms =
      total_arrivals > 0.0 ? 1e3 * latency_weighted / total_arrivals : 0.0;

  // Energy and carbon.
  for (std::size_t j = 0; j < problem.num_datacenters(); ++j) {
    const auto& dc = problem.datacenters[j];
    const double demand = problem.demand_mw(j, lambda.col_sum(j));
    const double nu = std::max(0.0, demand - mu[j]);
    const double tons = nu * dc.carbon_rate / kKgPerTon;

    out.demand_mwh += demand;
    out.fuel_cell_mwh += mu[j];
    out.grid_mwh += nu;
    out.grid_cost += dc.grid_price * nu;
    out.fuel_cell_cost += problem.fuel_cell_price * mu[j];
    out.carbon_tons += tons;
    out.carbon_cost += dc.emission_cost->value(tons);
  }
  out.energy_cost = out.grid_cost + out.fuel_cell_cost;
  out.ufc = out.utility - out.energy_cost - out.carbon_cost;
  out.utilization =
      out.demand_mwh > 0.0 ? out.fuel_cell_mwh / out.demand_mwh : 0.0;
  return out;
}

double ufc_objective(const UfcProblem& problem, const Mat& lambda,
                     const Vec& mu) {
  return evaluate(problem, lambda, mu).ufc;
}

double min_objective(const UfcProblem& problem, const Mat& lambda,
                     const Vec& mu, const Vec& nu) {
  UFC_EXPECTS(nu.size() == problem.num_datacenters());
  double total = 0.0;
  for (std::size_t j = 0; j < problem.num_datacenters(); ++j) {
    const auto& dc = problem.datacenters[j];
    const double tons = nu[j] * dc.carbon_rate / kKgPerTon;
    total += dc.emission_cost->value(tons) + dc.grid_price * nu[j] +
             problem.fuel_cell_price * mu[j];
  }
  for (std::size_t i = 0; i < problem.num_front_ends(); ++i) {
    const Vec row = lambda.row(i);
    total -= problem.latency_weight * problem.arrivals[i] *
             problem.utility->value(problem.average_latency_s(i, row));
  }
  return total;
}

double improvement_percent(double ufc_x, double ufc_y) {
  const double denom = std::abs(ufc_y);
  // ufc-lint: allow(float-equal) — exact-zero guard before division.
  if (denom == 0.0) return 0.0;
  return 100.0 * (ufc_x - ufc_y) / denom;
}

}  // namespace ufc
