// Battery storage model for the temporal peak-shaving extension.
//
// The paper restricts decisions to one slot (interactive load is
// non-deferrable), explicitly leaving temporal levers to related work
// (peak shaving [19], GreenSwitch-style storage [26]). A datacenter battery
// is the minimal such lever: it couples slots through its state of charge
// and lets the operator buy cheap off-peak grid energy to displace
// expensive peak energy. sim/storage.hpp layers a threshold policy for it
// on top of the per-slot UFC optimization.
#pragma once

#include "util/contract.hpp"

namespace ufc {

/// Static battery parameters (per datacenter).
struct BatterySpec {
  double capacity_mwh = 0.0;       ///< Usable energy content.
  double max_charge_mw = 0.0;      ///< Grid -> battery rate limit.
  double max_discharge_mw = 0.0;   ///< Battery -> load rate limit.
  /// Round-trip efficiency in (0, 1]; losses are charged on the way in
  /// (storing 1 MWh of dischargeable energy draws 1/eff MWh from the grid).
  double round_trip_efficiency = 0.85;
};

/// Mutable battery state with enforced physical limits.
class Battery {
 public:
  explicit Battery(const BatterySpec& spec);

  const BatterySpec& spec() const { return spec_; }
  double charge_mwh() const { return charge_mwh_; }
  /// Dischargeable headroom this slot, MW (1-hour slots).
  double available_discharge_mw() const;
  /// Chargeable headroom this slot, MW, measured at the battery terminals.
  double available_charge_mw() const;

  /// Draws `grid_mw` from the grid for one hour; stores grid_mw * eff.
  /// Returns the energy actually stored (MWh). Clamps to limits.
  double charge_from_grid(double grid_mw);

  /// Discharges up to `requested_mw` for one hour; returns the power
  /// actually delivered (MW). Clamps to limits.
  double discharge(double requested_mw);

 private:
  BatterySpec spec_;
  double charge_mwh_ = 0.0;
};

}  // namespace ufc
