#include "model/power.hpp"

#include "util/contract.hpp"

namespace ufc {

double power_alpha_mw(double servers, const ServerPowerModel& model,
                      double pue) {
  UFC_EXPECTS(servers >= 0.0);
  UFC_EXPECTS(model.idle_watts >= 0.0);
  UFC_EXPECTS(pue >= 1.0);
  return servers * model.idle_watts * pue / kWattsPerMegawatt;
}

double power_beta_mw(const ServerPowerModel& model, double pue) {
  UFC_EXPECTS(model.peak_watts >= model.idle_watts);
  UFC_EXPECTS(pue >= 1.0);
  return (model.peak_watts - model.idle_watts) * pue / kWattsPerMegawatt;
}

double power_demand_mw(double servers, const ServerPowerModel& model,
                       double pue, double workload) {
  UFC_EXPECTS(workload >= 0.0);
  return power_alpha_mw(servers, model, pue) +
         power_beta_mw(model, pue) * workload;
}

}  // namespace ufc
