#include "model/problem.hpp"

#include <algorithm>
#include <cmath>

#include "util/contract.hpp"

namespace ufc {

const ServerPowerModel& UfcProblem::power_at(std::size_t j) const {
  UFC_EXPECTS(j < datacenters.size());
  return datacenters[j].power_override ? *datacenters[j].power_override
                                       : power;
}

double UfcProblem::alpha_mw(std::size_t j) const {
  UFC_EXPECTS(j < datacenters.size());
  return power_alpha_mw(datacenters[j].servers, power_at(j),
                        datacenters[j].pue);
}

double UfcProblem::beta_mw(std::size_t j) const {
  UFC_EXPECTS(j < datacenters.size());
  return power_beta_mw(power_at(j), datacenters[j].pue);
}

double UfcProblem::demand_mw(std::size_t j, double workload) const {
  UFC_EXPECTS(j < datacenters.size());
  return power_demand_mw(datacenters[j].servers, power_at(j),
                         datacenters[j].pue, workload);
}

double UfcProblem::total_arrivals() const {
  double total = 0.0;
  for (double a : arrivals) total += a;
  return total;
}

double UfcProblem::total_server_capacity() const {
  double total = 0.0;
  for (const auto& dc : datacenters) total += dc.servers;
  return total;
}

double UfcProblem::max_latency_s() const {
  double m = 0.0;
  for (double l : latency_s.raw()) m = std::max(m, l);
  return m;
}

double UfcProblem::average_latency_s(std::size_t i,
                                     const Vec& lambda_row) const {
  UFC_EXPECTS(i < arrivals.size());
  UFC_EXPECTS(lambda_row.size() == num_datacenters());
  if (arrivals[i] <= 0.0) return 0.0;
  double weighted = 0.0;
  for (std::size_t j = 0; j < lambda_row.size(); ++j)
    weighted += lambda_row[j] * latency_s(i, j);
  return weighted / arrivals[i];
}

void UfcProblem::validate() const {
  UFC_EXPECTS(!datacenters.empty());
  UFC_EXPECTS(!arrivals.empty());
  UFC_EXPECTS(latency_s.rows() == num_front_ends());
  UFC_EXPECTS(latency_s.cols() == num_datacenters());
  UFC_EXPECTS(utility != nullptr);
  UFC_EXPECTS(fuel_cell_price >= 0.0);
  UFC_EXPECTS(latency_weight >= 0.0);
  UFC_EXPECTS(power.peak_watts >= power.idle_watts);
  UFC_EXPECTS(power.idle_watts >= 0.0);

  for (const auto& dc : datacenters) {
    UFC_EXPECTS(dc.servers > 0.0);
    UFC_EXPECTS(dc.pue >= 1.0);
    UFC_EXPECTS(dc.grid_price >= 0.0);
    UFC_EXPECTS(dc.carbon_rate >= 0.0);
    UFC_EXPECTS(dc.fuel_cell_capacity_mw >= 0.0);
    UFC_EXPECTS(dc.emission_cost != nullptr);
    if (dc.power_override) {
      UFC_EXPECTS(dc.power_override->idle_watts >= 0.0);
      UFC_EXPECTS(dc.power_override->peak_watts >=
                  dc.power_override->idle_watts);
    }
  }
  for (double a : arrivals) UFC_EXPECTS(a >= 0.0);
  for (double l : latency_s.raw()) UFC_EXPECTS(l >= 0.0);

  // Feasibility of constraints (4)-(5): total work must fit somewhere.
  UFC_EXPECTS(total_arrivals() <= total_server_capacity());
}

Vec grid_draw_mw(const UfcProblem& problem, const Mat& lambda, const Vec& mu) {
  UFC_EXPECTS(lambda.rows() == problem.num_front_ends());
  UFC_EXPECTS(lambda.cols() == problem.num_datacenters());
  UFC_EXPECTS(mu.size() == problem.num_datacenters());
  Vec nu(problem.num_datacenters());
  for (std::size_t j = 0; j < nu.size(); ++j)
    nu[j] = problem.demand_mw(j, lambda.col_sum(j)) - mu[j];
  return nu;
}

double constraint_violation(const UfcProblem& problem, const Mat& lambda,
                            const Vec& mu) {
  double violation = 0.0;
  // Load balance (4): row sums equal arrivals.
  for (std::size_t i = 0; i < problem.num_front_ends(); ++i)
    violation = std::max(violation,
                         std::abs(lambda.row_sum(i) - problem.arrivals[i]));
  // Capacity (5): column sums within server counts.
  for (std::size_t j = 0; j < problem.num_datacenters(); ++j)
    violation = std::max(
        violation, lambda.col_sum(j) - problem.datacenters[j].servers);
  // Power balance (6): non-negative grid draw.
  const Vec nu = grid_draw_mw(problem, lambda, mu);
  for (double v : nu) violation = std::max(violation, -v);
  // Variable bounds.
  for (double l : lambda.raw()) violation = std::max(violation, -l);
  for (std::size_t j = 0; j < mu.size(); ++j) {
    violation = std::max(violation, -mu[j]);
    violation = std::max(
        violation, mu[j] - problem.datacenters[j].fuel_cell_capacity_mw);
  }
  return std::max(violation, 0.0);
}

}  // namespace ufc
