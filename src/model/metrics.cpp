#include "model/metrics.hpp"

#include <algorithm>

#include "util/contract.hpp"

namespace ufc {

IndexMetrics complementary_indexes(const UfcProblem& problem,
                                   const Mat& lambda, const Vec& mu) {
  UFC_EXPECTS(lambda.rows() == problem.num_front_ends());
  UFC_EXPECTS(lambda.cols() == problem.num_datacenters());
  UFC_EXPECTS(mu.size() == problem.num_datacenters());

  IndexMetrics metrics;
  double facility_mwh = 0.0;
  double grid_carbon_kg = 0.0;
  for (std::size_t j = 0; j < problem.num_datacenters(); ++j) {
    const auto& dc = problem.datacenters[j];
    const double demand = problem.demand_mw(j, lambda.col_sum(j));
    const double nu = std::max(0.0, demand - mu[j]);
    facility_mwh += demand;
    // IT energy is the facility energy stripped of the PUE overhead.
    metrics.it_energy_mwh += demand / dc.pue;
    grid_carbon_kg += nu * dc.carbon_rate;
  }
  UFC_EXPECTS(metrics.it_energy_mwh > 0.0);
  metrics.pue = facility_mwh / metrics.it_energy_mwh;
  // kg per kWh == tonne per MWh; divide kg by MWh*1000.
  metrics.cue_kg_per_kwh = grid_carbon_kg / (metrics.it_energy_mwh * 1000.0);

  double latency_weighted = 0.0;
  for (std::size_t i = 0; i < problem.num_front_ends(); ++i) {
    const Vec row = lambda.row(i);
    latency_weighted +=
        problem.arrivals[i] * problem.average_latency_s(i, row);
  }
  const double total_arrivals = problem.total_arrivals();
  const double mean_latency_s =
      total_arrivals > 0.0 ? latency_weighted / total_arrivals : 0.0;
  // Average power in kW over the 1-hour slot times the mean latency.
  metrics.erp_kws = facility_mwh * 1000.0 * mean_latency_s;
  return metrics;
}

}  // namespace ufc
