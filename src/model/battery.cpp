#include "model/battery.hpp"

#include <algorithm>

namespace ufc {

Battery::Battery(const BatterySpec& spec) : spec_(spec) {
  UFC_EXPECTS(spec.capacity_mwh >= 0.0);
  UFC_EXPECTS(spec.max_charge_mw >= 0.0);
  UFC_EXPECTS(spec.max_discharge_mw >= 0.0);
  UFC_EXPECTS(spec.round_trip_efficiency > 0.0 &&
              spec.round_trip_efficiency <= 1.0);
}

double Battery::available_discharge_mw() const {
  return std::min(spec_.max_discharge_mw, charge_mwh_);
}

double Battery::available_charge_mw() const {
  const double room = spec_.capacity_mwh - charge_mwh_;
  return std::min(spec_.max_charge_mw,
                  room / spec_.round_trip_efficiency);
}

double Battery::charge_from_grid(double grid_mw) {
  UFC_EXPECTS(grid_mw >= 0.0);
  const double accepted = std::min(grid_mw, available_charge_mw());
  const double stored = accepted * spec_.round_trip_efficiency;
  charge_mwh_ = std::min(spec_.capacity_mwh, charge_mwh_ + stored);
  return stored;
}

double Battery::discharge(double requested_mw) {
  UFC_EXPECTS(requested_mw >= 0.0);
  const double delivered = std::min(requested_mw, available_discharge_mw());
  charge_mwh_ -= delivered;
  return delivered;
}

}  // namespace ufc
