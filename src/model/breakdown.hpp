// UFC evaluation: decomposes an operating point (lambda, mu) into the three
// components of the index — workload utility, energy cost and carbon cost —
// plus the derived metrics every figure of the paper reports (average
// latency, fuel-cell utilization, emissions).
#pragma once

#include "math/matrix.hpp"
#include "math/vector.hpp"
#include "model/problem.hpp"

namespace ufc {

/// All UFC components for one slot at one operating point.
struct UfcBreakdown {
  double utility = 0.0;           ///< w * sum_i U(lambda_i), $ (non-positive).
  double energy_cost = 0.0;       ///< sum_j p_j nu_j + p0 mu_j, $.
  double grid_cost = 0.0;         ///< sum_j p_j nu_j, $.
  double fuel_cell_cost = 0.0;    ///< sum_j p0 mu_j, $.
  double carbon_cost = 0.0;       ///< sum_j V_j(E_j), $.
  double carbon_tons = 0.0;       ///< sum_j E_j, metric tons.
  double ufc = 0.0;               ///< utility - energy_cost - carbon_cost.
  double avg_latency_ms = 0.0;    ///< request-weighted over all front-ends.
  double demand_mwh = 0.0;        ///< total power demand this slot.
  double fuel_cell_mwh = 0.0;     ///< total fuel-cell generation.
  double grid_mwh = 0.0;          ///< total grid draw.
  double utilization = 0.0;       ///< fuel_cell_mwh / demand_mwh in [0, 1].
};

/// Evaluates all UFC components at (lambda, mu). The point need not be
/// exactly feasible (solvers call this on slightly-infeasible iterates);
/// nu is computed from the power balance and clamped at 0 for costing.
UfcBreakdown evaluate(const UfcProblem& problem, const Mat& lambda,
                      const Vec& mu);

/// The scalar UFC objective (paper problem (3)) at (lambda, mu).
double ufc_objective(const UfcProblem& problem, const Mat& lambda,
                     const Vec& mu);

/// The equivalent minimization objective of the ADMM form (problem (13)):
/// energy + carbon - utility, with nu given explicitly.
double min_objective(const UfcProblem& problem, const Mat& lambda,
                     const Vec& mu, const Vec& nu);

/// Relative improvement of strategy x over strategy y as the paper's
/// I indexes: (UFC_x - UFC_y) / |UFC_y|, in percent.
double improvement_percent(double ufc_x, double ufc_y);

}  // namespace ufc
