// Workload-performance utility functions (paper §II-B3).
//
// The utility of the user group at front-end i is
//
//     U(lambda_i) = A_i * u( l_i ),    l_i = sum_j lambda_ij L_ij / A_i ,
//
// where l_i is the request-weighted average propagation latency (seconds)
// and u is a decreasing concave shape function. The paper's default is the
// quadratic u(l) = -l^2 (its eq. (2)); we also provide linear and
// exponential shapes for sensitivity studies.
//
// Gradient identity used by the solvers:  dU/dlambda_ij = u'(l_i) * L_ij.
#pragma once

#include <memory>
#include <string>

namespace ufc {

/// Decreasing concave latency-utility shape u(l) with l in seconds.
class UtilityFunction {
 public:
  virtual ~UtilityFunction() = default;

  /// u(l). Must be non-increasing and concave in l >= 0.
  virtual double value(double latency_s) const = 0;

  /// u'(l) (any supergradient selection for non-smooth shapes).
  virtual double derivative(double latency_s) const = 0;

  /// sup |u''(l)| over l in [0, latency_max_s]; used to derive exact
  /// Lipschitz constants for the sub-problem solvers.
  virtual double max_curvature(double latency_max_s) const = 0;

  /// True iff u(l) = -l^2 exactly, enabling the exact rank-one QP path in
  /// the lambda sub-problem.
  virtual bool is_quadratic() const { return false; }

  virtual std::string name() const = 0;
  virtual std::unique_ptr<UtilityFunction> clone() const = 0;
};

/// u(l) = -l^2 — the paper's eq. (2): users increasingly abandon the
/// service as latency grows.
class QuadraticUtility final : public UtilityFunction {
 public:
  double value(double latency_s) const override;
  double derivative(double latency_s) const override;
  double max_curvature(double latency_max_s) const override;
  bool is_quadratic() const override { return true; }
  std::string name() const override { return "quadratic"; }
  std::unique_ptr<UtilityFunction> clone() const override;
};

/// u(l) = -l — linear displeasure in latency (risk-neutral users).
class LinearUtility final : public UtilityFunction {
 public:
  double value(double latency_s) const override;
  double derivative(double latency_s) const override;
  double max_curvature(double latency_max_s) const override;
  std::string name() const override { return "linear"; }
  std::unique_ptr<UtilityFunction> clone() const override;
};

/// u(l) = -(exp(l / theta) - 1) — sharply increasing displeasure beyond the
/// latency scale theta (seconds). Concave decreasing for theta > 0.
class ExponentialUtility final : public UtilityFunction {
 public:
  explicit ExponentialUtility(double theta_s);
  double value(double latency_s) const override;
  double derivative(double latency_s) const override;
  double max_curvature(double latency_max_s) const override;
  std::string name() const override { return "exponential"; }
  std::unique_ptr<UtilityFunction> clone() const override;

  double theta() const { return theta_; }

 private:
  double theta_;
};

}  // namespace ufc
