# Header self-sufficiency check: every src/**/*.hpp must compile as the
# first (and only) include of a translation unit, so no header silently
# depends on what its includers happened to pull in first.
#
# For each header we generate a one-line TU under ${CMAKE_BINARY_DIR}/
# header_check/ and compile them all into an OBJECT library that is excluded
# from the default build — `ctest -R ufc_header_check` (or CI's analyze job)
# builds it on demand via the ufc_header_check test below.

file(GLOB_RECURSE UFC_CHECKED_HEADERS CONFIGURE_DEPENDS
     ${PROJECT_SOURCE_DIR}/src/*.hpp)

set(UFC_HEADER_CHECK_TUS "")
foreach(header IN LISTS UFC_CHECKED_HEADERS)
  file(RELATIVE_PATH header_rel ${PROJECT_SOURCE_DIR}/src ${header})
  string(REPLACE "/" "__" tu_name ${header_rel})
  string(REGEX REPLACE "\\.hpp$" ".cpp" tu_name ${tu_name})
  set(tu ${CMAKE_BINARY_DIR}/header_check/${tu_name})
  file(CONFIGURE OUTPUT ${tu} CONTENT "#include \"${header_rel}\"\n")
  list(APPEND UFC_HEADER_CHECK_TUS ${tu})
endforeach()

add_library(ufc_header_check OBJECT EXCLUDE_FROM_ALL ${UFC_HEADER_CHECK_TUS})
target_include_directories(ufc_header_check PRIVATE ${PROJECT_SOURCE_DIR}/src)
target_link_libraries(ufc_header_check PRIVATE ufc_warnings)

add_test(NAME ufc_header_check
         COMMAND ${CMAKE_COMMAND} --build ${CMAKE_BINARY_DIR}
                 --target ufc_header_check --config $<CONFIG>)
set_tests_properties(ufc_header_check PROPERTIES TIMEOUT 600
                     RUN_SERIAL TRUE)
