# clang-tidy integration.
#
# UFC_CLANG_TIDY=ON wires clang-tidy into every compile via
# CMAKE_CXX_CLANG_TIDY, using the checks in the repo-root .clang-tidy.
# Findings are promoted to errors so a tidy build is pass/fail, not advisory.
# Configuration fails loudly if the tool is missing — use
# scripts/run_clang_tidy.sh for a standalone run that degrades gracefully.

option(UFC_CLANG_TIDY "Run clang-tidy on every translation unit" OFF)

if(UFC_CLANG_TIDY)
  find_program(UFC_CLANG_TIDY_EXE NAMES clang-tidy clang-tidy-18 clang-tidy-17
               clang-tidy-16 clang-tidy-15 clang-tidy-14)
  if(NOT UFC_CLANG_TIDY_EXE)
    message(FATAL_ERROR "UFC_CLANG_TIDY=ON but no clang-tidy executable found")
  endif()
  set(CMAKE_CXX_CLANG_TIDY
      ${UFC_CLANG_TIDY_EXE} --warnings-as-errors=* --use-color)
  message(STATUS "UFC: clang-tidy enabled (${UFC_CLANG_TIDY_EXE})")
endif()
