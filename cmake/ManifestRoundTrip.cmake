# Drives the --metrics manifest round trip as a ctest: run
#   ufc_cli solve --metrics <scratch>/ufc_cli_manifest.json
# then validate the written document against the ufc-run-v1 schema with
# scripts/check_bench_json.py. Invoked from tests/CMakeLists.txt with
# -DUFC_CLI=..., -DPYTHON=..., -DCHECKER=..., -DWORKDIR=...
foreach(required UFC_CLI PYTHON CHECKER WORKDIR)
  if(NOT DEFINED ${required})
    message(FATAL_ERROR "ManifestRoundTrip.cmake: ${required} not set")
  endif()
endforeach()

set(manifest "${WORKDIR}/ufc_cli_manifest.json")
file(REMOVE "${manifest}")

execute_process(
  COMMAND "${UFC_CLI}" solve --metrics "${manifest}"
  WORKING_DIRECTORY "${WORKDIR}"
  RESULT_VARIABLE cli_status)
if(NOT cli_status EQUAL 0)
  message(FATAL_ERROR "ufc_cli solve --metrics exited with ${cli_status}")
endif()
if(NOT EXISTS "${manifest}")
  message(FATAL_ERROR "ufc_cli reported success but wrote no manifest")
endif()

execute_process(
  COMMAND "${PYTHON}" "${CHECKER}" "${manifest}"
  RESULT_VARIABLE check_status)
if(NOT check_status EQUAL 0)
  message(FATAL_ERROR "manifest failed ufc-run-v1 validation (${check_status})")
endif()
