# Sanitizer wiring for all UFC targets.
#
# UFC_SANITIZE is a cache string selecting a sanitizer stack:
#   OFF                 - no instrumentation (default)
#   address+undefined   - ASan + UBSan (UBSan non-recoverable: any finding aborts)
#   thread              - TSan
#   leak                - standalone LeakSanitizer
#
# Flags are applied globally (compile + link) so the static library, tests,
# benches, and examples are all instrumented consistently; mixing an
# uninstrumented libufc with instrumented tests would mask findings.

set(UFC_SANITIZE "OFF" CACHE STRING
    "Sanitizer stack: OFF, address+undefined, thread, or leak")
set_property(CACHE UFC_SANITIZE PROPERTY STRINGS
             "OFF" "address+undefined" "thread" "leak")

if(NOT UFC_SANITIZE STREQUAL "OFF")
  if(NOT CMAKE_CXX_COMPILER_ID MATCHES "GNU|Clang")
    message(FATAL_ERROR "UFC_SANITIZE requires GCC or Clang, got ${CMAKE_CXX_COMPILER_ID}")
  endif()

  if(UFC_SANITIZE STREQUAL "address+undefined")
    set(_ufc_san_flags -fsanitize=address,undefined -fno-sanitize-recover=all)
  elseif(UFC_SANITIZE STREQUAL "thread")
    set(_ufc_san_flags -fsanitize=thread)
  elseif(UFC_SANITIZE STREQUAL "leak")
    set(_ufc_san_flags -fsanitize=leak)
  else()
    message(FATAL_ERROR "Unknown UFC_SANITIZE value: ${UFC_SANITIZE}")
  endif()

  # Keep frames and symbols so sanitizer reports carry usable stacks.
  list(APPEND _ufc_san_flags -fno-omit-frame-pointer -g)

  add_compile_options(${_ufc_san_flags})
  add_link_options(${_ufc_san_flags})
  message(STATUS "UFC: sanitizers enabled (${UFC_SANITIZE})")
  unset(_ufc_san_flags)
endif()
