#include <gtest/gtest.h>

#include <array>

#include "sim/sweep.hpp"
#include "util/contract.hpp"

namespace ufc::sim {
namespace {

traces::ScenarioConfig small_config() {
  traces::ScenarioConfig config;
  config.hours = 24;
  return config;
}

SimulatorOptions fast_options() {
  SimulatorOptions options;
  options.admg.tolerance = 3e-3;
  options.admg.max_iterations = 600;
  options.stride = 3;
  return options;
}

TEST(FuelCellPriceSweep, UtilizationFallsAsPriceRises) {
  // Paper Fig. 9: utilization and improvement both decrease in p0.
  const std::array<double, 3> prices = {20.0, 80.0, 160.0};
  const auto points =
      sweep_fuel_cell_price(small_config(), prices, fast_options());
  ASSERT_EQ(points.size(), 3u);
  EXPECT_DOUBLE_EQ(points[0].parameter, 20.0);
  EXPECT_GE(points[0].avg_utilization, points[1].avg_utilization - 1e-6);
  EXPECT_GE(points[1].avg_utilization, points[2].avg_utilization - 1e-6);
  EXPECT_GE(points[0].avg_improvement_pct,
            points[1].avg_improvement_pct - 1e-6);
  // Improvement is never negative (hybrid dominates grid).
  for (const auto& point : points)
    EXPECT_GT(point.avg_improvement_pct, -0.5);
}

TEST(FuelCellPriceSweep, FreeFuelCellsSaturateUtilization) {
  const std::array<double, 1> prices = {0.0};
  const auto points =
      sweep_fuel_cell_price(small_config(), prices, fast_options());
  EXPECT_GT(points[0].avg_utilization, 0.97);
}

TEST(CarbonTaxSweep, UtilizationRisesWithTax) {
  // Paper Fig. 10: both metrics increase in the tax rate.
  const std::array<double, 3> taxes = {0.0, 60.0, 200.0};
  const auto points = sweep_carbon_tax(small_config(), taxes, fast_options());
  ASSERT_EQ(points.size(), 3u);
  EXPECT_LE(points[0].avg_utilization, points[1].avg_utilization + 1e-6);
  EXPECT_LE(points[1].avg_utilization, points[2].avg_utilization + 1e-6);
  EXPECT_LE(points[0].avg_improvement_pct,
            points[2].avg_improvement_pct + 1e-6);
}

TEST(Sweeps, EmptyParameterListThrows) {
  EXPECT_THROW(
      sweep_fuel_cell_price(small_config(), std::span<const double>{},
                            fast_options()),
      ContractViolation);
  EXPECT_THROW(sweep_carbon_tax(small_config(), std::span<const double>{},
                                fast_options()),
               ContractViolation);
}

TEST(Sweeps, NegativeParametersThrow) {
  const std::array<double, 1> bad = {-5.0};
  EXPECT_THROW(sweep_fuel_cell_price(small_config(), bad, fast_options()),
               ContractViolation);
  EXPECT_THROW(sweep_carbon_tax(small_config(), bad, fast_options()),
               ContractViolation);
}

}  // namespace
}  // namespace ufc::sim
