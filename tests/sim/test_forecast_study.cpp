#include <gtest/gtest.h>

#include "sim/forecast_study.hpp"
#include "util/contract.hpp"
#include "util/stats.hpp"

namespace ufc::sim {
namespace {

traces::Scenario study_scenario() {
  traces::ScenarioConfig config;
  config.hours = 96;  // four days: two init days + two evaluation days
  return traces::Scenario::generate(config);
}

ForecastStudyOptions fast_options(ForecastMethod method) {
  ForecastStudyOptions options;
  options.method = method;
  options.skip_slots = 48;
  options.admg.tolerance = 3e-3;
  options.admg.max_iterations = 600;
  return options;
}

TEST(ForecastStudy, PlanningOnForecastsCostsLittleUfc) {
  // The paper's premise: arrivals are predictable enough that per-slot
  // planning on forecasts is sound. The realized-vs-clairvoyant gap should
  // be small (a few percent).
  const auto scenario = study_scenario();
  const auto result = run_forecast_study(
      scenario, fast_options(ForecastMethod::HoltWinters));
  EXPECT_LT(result.workload_mape, 0.15);
  EXPECT_LT(result.avg_ufc_gap_pct, 5.0);
  EXPECT_EQ(result.ufc_gap_pct.size(), 48u);
}

TEST(ForecastStudy, RealizedNeverBeatsClairvoyantByMuch) {
  // The clairvoyant solves the actual slot to (near-)optimality, so the gap
  // must be essentially nonnegative (up to solver tolerance).
  const auto scenario = study_scenario();
  const auto result = run_forecast_study(
      scenario, fast_options(ForecastMethod::HoltWinters));
  EXPECT_GT(min_value(result.ufc_gap_pct), -1.0);
}

TEST(ForecastStudy, SeasonalNaiveWorksButIsNoBetter) {
  const auto scenario = study_scenario();
  const auto naive = run_forecast_study(
      scenario, fast_options(ForecastMethod::SeasonalNaive));
  const auto hw = run_forecast_study(
      scenario, fast_options(ForecastMethod::HoltWinters));
  EXPECT_LT(naive.avg_ufc_gap_pct, 10.0);
  // Holt-Winters adapts to the weekday pattern at least as well on average.
  EXPECT_LE(hw.avg_ufc_gap_pct, naive.avg_ufc_gap_pct + 1.0);
}

TEST(ForecastStudy, InvalidSkipThrows) {
  const auto scenario = study_scenario();
  auto options = fast_options(ForecastMethod::HoltWinters);
  options.skip_slots = scenario.hours();
  EXPECT_THROW(run_forecast_study(scenario, options), ContractViolation);
}

}  // namespace
}  // namespace ufc::sim
