#include <gtest/gtest.h>

#include "sim/batch.hpp"
#include "util/contract.hpp"
#include "util/stats.hpp"

namespace ufc::sim {
namespace {

traces::Scenario batch_scenario() {
  traces::ScenarioConfig config;
  config.hours = 72;
  return traces::Scenario::generate(config);
}

SimulatorOptions fast_options() { return {}; }

TEST(BatchExtension, DeadlineFlexibilitySavesEnergyCost) {
  const auto scenario = batch_scenario();
  BatchWorkloadOptions options;
  options.batch_fraction = 0.2;
  options.deadline_hours = 8;
  const auto result = run_batch_week(scenario, options, fast_options());
  EXPECT_GT(result.total_batch_units, 0.0);
  EXPECT_GT(result.saving_pct, 1.0);
  EXPECT_LE(result.scheduled_cost, result.inline_cost + 1e-9);
}

TEST(BatchExtension, ZeroDeadlineMatchesInlineCost) {
  // With no temporal freedom, the scheduler can still pick cheaper *sites*
  // within the hour — which the inline baseline also does — so costs match.
  const auto scenario = batch_scenario();
  BatchWorkloadOptions options;
  options.batch_fraction = 0.15;
  options.deadline_hours = 0;
  const auto result = run_batch_week(scenario, options, fast_options());
  EXPECT_NEAR(result.scheduled_cost, result.inline_cost,
              1e-6 * std::max(1.0, result.inline_cost));
  EXPECT_NEAR(result.deferred_fraction, 0.0, 1e-12);
  EXPECT_NEAR(result.average_delay_hours, 0.0, 1e-12);
}

TEST(BatchExtension, LongerDeadlinesSaveAtLeastAsMuch) {
  const auto scenario = batch_scenario();
  BatchWorkloadOptions short_deadline;
  short_deadline.deadline_hours = 2;
  BatchWorkloadOptions long_deadline;
  long_deadline.deadline_hours = 12;
  const auto a = run_batch_week(scenario, short_deadline, fast_options());
  const auto b = run_batch_week(scenario, long_deadline, fast_options());
  EXPECT_LE(b.scheduled_cost, a.scheduled_cost + 1e-6);
}

TEST(BatchExtension, DeadlinesAreRespected) {
  const auto scenario = batch_scenario();
  BatchWorkloadOptions options;
  options.deadline_hours = 4;
  const auto result = run_batch_week(scenario, options, fast_options());
  // Greedy placement bounds every unit's delay by the window; the weighted
  // average must therefore be within it too.
  EXPECT_LE(result.average_delay_hours, 4.0 + 1e-9);
}

TEST(BatchExtension, ZeroFractionIsFree) {
  const auto scenario = batch_scenario();
  BatchWorkloadOptions options;
  options.batch_fraction = 0.0;
  const auto result = run_batch_week(scenario, options, fast_options());
  EXPECT_DOUBLE_EQ(result.total_batch_units, 0.0);
  EXPECT_DOUBLE_EQ(result.inline_cost, 0.0);
  EXPECT_DOUBLE_EQ(result.scheduled_cost, 0.0);
}

TEST(BatchExtension, ScheduleAccountsForEveryUnit) {
  const auto scenario = batch_scenario();
  BatchWorkloadOptions options;
  options.batch_fraction = 0.15;
  options.deadline_hours = 6;
  const auto result = run_batch_week(scenario, options, fast_options());
  // Placed + unplaced must cover every arrived unit exactly, and greedy EDF
  // should place essentially everything at this load level.
  EXPECT_NEAR(sum(result.scheduled_load) + result.unplaced_units,
              result.total_batch_units, 1e-6 * result.total_batch_units);
  EXPECT_LT(result.unplaced_units, 0.01 * result.total_batch_units);
}

TEST(BatchExtension, InvalidOptionsThrow) {
  const auto scenario = batch_scenario();
  BatchWorkloadOptions bad;
  bad.batch_fraction = -0.1;
  EXPECT_THROW(run_batch_week(scenario, bad, fast_options()),
               ContractViolation);
  bad = {};
  bad.deadline_hours = -1;
  EXPECT_THROW(run_batch_week(scenario, bad, fast_options()),
               ContractViolation);
}

}  // namespace
}  // namespace ufc::sim
