#include <gtest/gtest.h>

#include "sim/storage.hpp"
#include "util/contract.hpp"

namespace ufc::sim {
namespace {

traces::Scenario storage_scenario() {
  traces::ScenarioConfig config;
  config.hours = 72;
  return traces::Scenario::generate(config);
}

StoragePolicyOptions sized_policy() {
  StoragePolicyOptions policy;
  policy.battery.capacity_mwh = 8.0;
  policy.battery.max_charge_mw = 2.0;
  policy.battery.max_discharge_mw = 2.0;
  policy.battery.round_trip_efficiency = 0.85;
  return policy;
}

SimulatorOptions fast_options() {
  SimulatorOptions options;
  options.stride = 1;
  return options;
}

TEST(StorageExtension, ArbitrageSavesGridCost) {
  const auto scenario = storage_scenario();
  const auto result =
      run_storage_week(scenario, sized_policy(), fast_options());
  EXPECT_GT(result.total_saving, 0.0);
  EXPECT_GT(result.saving_pct, 0.2);
  EXPECT_EQ(result.slots.size(), 72u);
}

TEST(StorageExtension, ShavesThePeakGridDraw) {
  const auto scenario = storage_scenario();
  const auto result =
      run_storage_week(scenario, sized_policy(), fast_options());
  EXPECT_GE(result.peak_reduction_pct, 0.0);
}

TEST(StorageExtension, ZeroBatteryIsNoOp) {
  const auto scenario = storage_scenario();
  StoragePolicyOptions empty;
  const auto result = run_storage_week(scenario, empty, fast_options());
  EXPECT_NEAR(result.total_saving, 0.0, 1e-9);
  EXPECT_NEAR(result.peak_reduction_pct, 0.0, 1e-9);
  for (const auto& slot : result.slots) {
    EXPECT_DOUBLE_EQ(slot.discharged_mwh, 0.0);
    EXPECT_DOUBLE_EQ(slot.charged_grid_mwh, 0.0);
  }
}

TEST(StorageExtension, EnergyBooksBalance) {
  // Total discharged energy cannot exceed efficiency * charged energy.
  const auto scenario = storage_scenario();
  const auto result =
      run_storage_week(scenario, sized_policy(), fast_options());
  double charged = 0.0, discharged = 0.0;
  for (const auto& slot : result.slots) {
    charged += slot.charged_grid_mwh;
    discharged += slot.discharged_mwh;
  }
  EXPECT_GT(charged, 0.0);
  EXPECT_LE(discharged,
            charged * sized_policy().battery.round_trip_efficiency + 1e-9);
}

TEST(StorageExtension, BiggerBatterySavesAtLeastAsMuch) {
  const auto scenario = storage_scenario();
  auto small = sized_policy();
  small.battery.capacity_mwh = 2.0;
  auto large = sized_policy();
  large.battery.capacity_mwh = 16.0;
  large.battery.max_charge_mw = 4.0;
  large.battery.max_discharge_mw = 4.0;
  const auto small_result =
      run_storage_week(scenario, small, fast_options());
  const auto large_result =
      run_storage_week(scenario, large, fast_options());
  EXPECT_GE(large_result.total_saving, small_result.total_saving - 1e-6);
}

TEST(OptimalStorage, BeatsOrMatchesThresholdPolicy) {
  const auto scenario = storage_scenario();
  const auto threshold =
      run_storage_week(scenario, sized_policy(), fast_options());
  OptimalStorageOptions optimal;
  optimal.battery = sized_policy().battery;
  const auto dp = run_storage_week_optimal(scenario, optimal, fast_options());
  // The DP is a clairvoyant upper bound for this action space.
  EXPECT_GE(dp.total_saving, threshold.total_saving - 1e-6);
  EXPECT_GT(dp.total_saving, 0.0);
}

TEST(OptimalStorage, SavingMonotoneInCapacity) {
  const auto scenario = storage_scenario();
  OptimalStorageOptions small;
  small.battery = sized_policy().battery;
  small.battery.capacity_mwh = 2.0;
  OptimalStorageOptions large;
  large.battery = sized_policy().battery;
  large.battery.capacity_mwh = 16.0;
  large.battery.max_charge_mw = 4.0;
  large.battery.max_discharge_mw = 4.0;
  const auto s = run_storage_week_optimal(scenario, small, fast_options());
  const auto l = run_storage_week_optimal(scenario, large, fast_options());
  // A strictly larger action space cannot save less (up to SoC
  // discretization granularity).
  EXPECT_GE(l.total_saving, s.total_saving - 5.0);
}

TEST(OptimalStorage, NeverRaisesTheGridPeak) {
  const auto scenario = storage_scenario();
  OptimalStorageOptions optimal;
  optimal.battery = sized_policy().battery;
  optimal.battery.capacity_mwh = 20.0;
  optimal.battery.max_charge_mw = 6.0;
  optimal.battery.max_discharge_mw = 6.0;
  const auto dp = run_storage_week_optimal(scenario, optimal, fast_options());
  EXPECT_GE(dp.peak_reduction_pct, -1e-9);
}

TEST(OptimalStorage, ZeroBatteryIsNoOp) {
  const auto scenario = storage_scenario();
  OptimalStorageOptions optimal;  // zero-capacity default battery
  const auto dp = run_storage_week_optimal(scenario, optimal, fast_options());
  EXPECT_NEAR(dp.total_saving, 0.0, 1e-9);
}

TEST(OptimalStorage, EnergyBooksBalance) {
  const auto scenario = storage_scenario();
  OptimalStorageOptions optimal;
  optimal.battery = sized_policy().battery;
  const auto dp = run_storage_week_optimal(scenario, optimal, fast_options());
  double charged = 0.0, discharged = 0.0;
  for (const auto& slot : dp.slots) {
    charged += slot.charged_grid_mwh;
    discharged += slot.discharged_mwh;
  }
  EXPECT_LE(discharged,
            charged * optimal.battery.round_trip_efficiency + 1e-9);
}

TEST(StorageExtension, InvalidQuantilesThrow) {
  const auto scenario = storage_scenario();
  auto policy = sized_policy();
  policy.charge_quantile = 0.8;
  policy.discharge_quantile = 0.3;  // inverted
  EXPECT_THROW(run_storage_week(scenario, policy, fast_options()),
               ContractViolation);
}

}  // namespace
}  // namespace ufc::sim
