#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "util/contract.hpp"
#include "util/stats.hpp"

namespace ufc::sim {
namespace {

traces::Scenario small_scenario() {
  traces::ScenarioConfig config;
  config.hours = 24;
  return traces::Scenario::generate(config);
}

SimulatorOptions fast_options() {
  SimulatorOptions options;
  options.admg.tolerance = 3e-3;
  options.admg.max_iterations = 600;
  return options;
}

TEST(SingleSiteCosts, HandComputedExample) {
  const std::vector<double> demand = {1.0, 2.0, 1.0};
  const std::vector<double> price = {50.0, 100.0, 90.0};
  const auto costs = single_site_strategy_costs(demand, price, 80.0);
  EXPECT_DOUBLE_EQ(costs.grid, 50.0 + 200.0 + 90.0);
  EXPECT_DOUBLE_EQ(costs.fuel_cell, 80.0 * 4.0);
  EXPECT_DOUBLE_EQ(costs.hybrid, 50.0 + 160.0 + 80.0);
}

TEST(SingleSiteCosts, HybridNeverWorseThanEither) {
  const std::vector<double> demand = {1.5, 0.5, 2.5, 3.0};
  const std::vector<double> price = {120.0, 20.0, 79.0, 81.0};
  const auto costs = single_site_strategy_costs(demand, price, 80.0);
  EXPECT_LE(costs.hybrid, costs.grid);
  EXPECT_LE(costs.hybrid, costs.fuel_cell);
}

TEST(SingleSiteCosts, MismatchedSizesThrow) {
  const std::vector<double> demand = {1.0};
  const std::vector<double> price = {1.0, 2.0};
  EXPECT_THROW(single_site_strategy_costs(demand, price, 80.0),
               ContractViolation);
}

TEST(RunStrategyWeek, ProducesOneResultPerSlot) {
  const auto scenario = small_scenario();
  const auto week =
      run_strategy_week(scenario, admm::Strategy::Hybrid, fast_options());
  EXPECT_EQ(week.slots.size(), 24u);
  for (std::size_t t = 0; t < week.slots.size(); ++t) {
    EXPECT_EQ(week.slots[t].slot, static_cast<int>(t));
    EXPECT_GT(week.slots[t].iterations, 0);
    EXPECT_TRUE(week.slots[t].converged);
  }
}

TEST(RunStrategyWeek, StrideSubsamples) {
  const auto scenario = small_scenario();
  auto options = fast_options();
  options.stride = 6;
  const auto week =
      run_strategy_week(scenario, admm::Strategy::Grid, options);
  EXPECT_EQ(week.slots.size(), 4u);
  EXPECT_EQ(week.slots[1].slot, 6);
}

TEST(WeekResult, AggregatesMatchSeries) {
  const auto scenario = small_scenario();
  const auto week =
      run_strategy_week(scenario, admm::Strategy::Grid, fast_options());
  EXPECT_NEAR(week.total_energy_cost(), sum(week.energy_cost_series()), 1e-9);
  EXPECT_NEAR(week.total_carbon_cost(), sum(week.carbon_cost_series()), 1e-9);
  EXPECT_NEAR(week.total_ufc(), sum(week.ufc_series()), 1e-9);
  EXPECT_NEAR(week.average_latency_ms(), mean(week.latency_ms_series()),
              1e-12);
  EXPECT_NEAR(week.average_utilization(), mean(week.utilization_series()),
              1e-12);
  EXPECT_EQ(week.iteration_series().size(), week.slots.size());
}

TEST(CompareStrategies, ImprovementIdentities) {
  const auto scenario = small_scenario();
  const auto cmp = compare_strategies(scenario, fast_options());
  ASSERT_EQ(cmp.improvement_hg.size(), 24u);
  for (std::size_t t = 0; t < 24; ++t) {
    const double g = cmp.grid.slots[t].breakdown.ufc;
    const double h = cmp.hybrid.slots[t].breakdown.ufc;
    EXPECT_NEAR(cmp.improvement_hg[t], 100.0 * (h - g) / std::abs(g), 1e-9);
  }
  EXPECT_NEAR(cmp.average_improvement_hg(), mean(cmp.improvement_hg), 1e-12);
}

TEST(CompareStrategies, PaperDominanceInvariants) {
  const auto scenario = small_scenario();
  const auto cmp = compare_strategies(scenario, fast_options());
  for (std::size_t t = 0; t < cmp.improvement_hg.size(); ++t) {
    // "it never reduces the UFC": Hybrid >= Grid (within solver tolerance).
    EXPECT_GT(cmp.improvement_hg[t], -1.0) << "slot " << t;
    EXPECT_GT(cmp.improvement_hf[t], -1.0) << "slot " << t;
  }
  // Grid uses no fuel cells; FuelCell uses only fuel cells.
  EXPECT_NEAR(cmp.grid.average_utilization(), 0.0, 1e-9);
  EXPECT_NEAR(cmp.fuel_cell.average_utilization(), 1.0, 1e-2);
}

TEST(WarmStartWeek, MatchesColdStartObjectivesWithFewerIterations) {
  const auto scenario = small_scenario();
  auto cold_options = fast_options();
  auto warm_options = fast_options();
  warm_options.warm_start = true;

  const auto cold =
      run_strategy_week(scenario, admm::Strategy::Hybrid, cold_options);
  const auto warm =
      run_strategy_week(scenario, admm::Strategy::Hybrid, warm_options);

  ASSERT_EQ(cold.slots.size(), warm.slots.size());
  for (std::size_t s = 0; s < cold.slots.size(); ++s) {
    EXPECT_TRUE(warm.slots[s].converged);
    EXPECT_NEAR(warm.slots[s].breakdown.ufc, cold.slots[s].breakdown.ufc,
                5e-3 * std::abs(cold.slots[s].breakdown.ufc))
        << "slot " << s;
  }
  // Warm starting must pay off on the week as a whole.
  EXPECT_LT(mean(warm.iteration_series()), 0.8 * mean(cold.iteration_series()));
}

TEST(SimulatorOptionsFromIni, AppliesOverridesAndDefaults) {
  const auto config = Config::parse(
      "[solver]\n"
      "rho = 5\n"
      "tolerance = 1e-4\n"
      "gaussian_back_substitution = false\n"
      "[simulate]\n"
      "stride = 4\n");
  const auto options = simulator_options_from(config);
  EXPECT_DOUBLE_EQ(options.admg.rho, 5.0);
  EXPECT_DOUBLE_EQ(options.admg.tolerance, 1e-4);
  EXPECT_FALSE(options.admg.gaussian_back_substitution);
  EXPECT_EQ(options.stride, 4);
  // Defaults kept for untouched keys.
  const SimulatorOptions defaults;
  EXPECT_EQ(options.admg.max_iterations, defaults.admg.max_iterations);
  EXPECT_DOUBLE_EQ(options.admg.epsilon, defaults.admg.epsilon);
}

TEST(FuelCellOutage, CoversIsHalfOpen) {
  const FuelCellOutage outage{.datacenter = 0, .first_hour = 3,
                              .last_hour = 6};
  EXPECT_FALSE(outage.covers(2));
  EXPECT_TRUE(outage.covers(3));
  EXPECT_TRUE(outage.covers(5));
  EXPECT_FALSE(outage.covers(6));
}

TEST(FuelCellOutageWeek, SlotsOutsideTheWindowAreUntouched) {
  const auto scenario = small_scenario();
  const auto base =
      run_strategy_week(scenario, admm::Strategy::Hybrid, fast_options());

  auto options = fast_options();
  options.outages.push_back({.datacenter = 0, .first_hour = 8,
                             .last_hour = 16});
  const auto degraded =
      run_strategy_week(scenario, admm::Strategy::Hybrid, options);

  ASSERT_EQ(degraded.slots.size(), base.slots.size());
  for (std::size_t t = 0; t < base.slots.size(); ++t) {
    const int hour = base.slots[t].slot;
    if (hour >= 8 && hour < 16) {
      // Losing generation capacity can only shrink the feasible set: the
      // UFC must not improve (solver-tolerance slack).
      EXPECT_LE(degraded.slots[t].breakdown.ufc,
                base.slots[t].breakdown.ufc +
                    3e-3 * std::abs(base.slots[t].breakdown.ufc))
          << "hour " << hour;
    } else {
      // The per-slot problems are identical outside the window and each
      // slot cold-starts: bitwise-equal outcomes.
      EXPECT_EQ(degraded.slots[t].breakdown.ufc, base.slots[t].breakdown.ufc)
          << "hour " << hour;
      EXPECT_EQ(degraded.slots[t].iterations, base.slots[t].iterations);
    }
  }
  EXPECT_LE(degraded.total_ufc(), base.total_ufc());
}

TEST(FuelCellOutageWeek, TotalOutageReducesHybridToGridStrategy) {
  const auto scenario = small_scenario();
  const auto n = scenario.problem_at(0).num_datacenters();

  auto options = fast_options();
  for (std::size_t j = 0; j < n; ++j)
    options.outages.push_back({.datacenter = j, .first_hour = 0,
                               .last_hour = 24});
  const auto blacked_out =
      run_strategy_week(scenario, admm::Strategy::Hybrid, options);
  const auto grid =
      run_strategy_week(scenario, admm::Strategy::Grid, fast_options());

  // With every fuel cell down, Hybrid's extra degree of freedom is pinned
  // to zero: slot by slot it must land on the Grid strategy's objective.
  ASSERT_EQ(blacked_out.slots.size(), grid.slots.size());
  for (std::size_t t = 0; t < grid.slots.size(); ++t)
    EXPECT_NEAR(blacked_out.slots[t].breakdown.ufc,
                grid.slots[t].breakdown.ufc,
                0.01 * std::abs(grid.slots[t].breakdown.ufc))
        << "slot " << t;
  EXPECT_NEAR(blacked_out.average_utilization(), 0.0, 1e-4);
}

TEST(FuelCellOutageWeek, InvalidOutagesThrow) {
  const auto scenario = small_scenario();
  {
    SimulatorOptions options = fast_options();
    options.outages.push_back({.datacenter = 1000, .first_hour = 0,
                               .last_hour = 4});
    EXPECT_THROW(
        run_strategy_week(scenario, admm::Strategy::Hybrid, options),
        ContractViolation);
  }
  {
    SimulatorOptions options = fast_options();
    options.outages.push_back({.datacenter = 0, .first_hour = 5,
                               .last_hour = 2});
    EXPECT_THROW(
        run_strategy_week(scenario, admm::Strategy::Hybrid, options),
        ContractViolation);
  }
}

TEST(RunStrategyWeek, InvalidStrideThrows) {
  const auto scenario = small_scenario();
  SimulatorOptions options = fast_options();
  options.stride = 0;
  EXPECT_THROW(run_strategy_week(scenario, admm::Strategy::Grid, options),
               ContractViolation);
}

}  // namespace
}  // namespace ufc::sim
