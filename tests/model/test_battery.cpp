#include <gtest/gtest.h>

#include "model/battery.hpp"

namespace ufc {
namespace {

BatterySpec small_battery() {
  BatterySpec spec;
  spec.capacity_mwh = 2.0;
  spec.max_charge_mw = 1.0;
  spec.max_discharge_mw = 0.8;
  spec.round_trip_efficiency = 0.8;
  return spec;
}

TEST(Battery, StartsEmpty) {
  Battery battery(small_battery());
  EXPECT_DOUBLE_EQ(battery.charge_mwh(), 0.0);
  EXPECT_DOUBLE_EQ(battery.available_discharge_mw(), 0.0);
  EXPECT_DOUBLE_EQ(battery.available_charge_mw(), 1.0);  // rate-limited
}

TEST(Battery, ChargingAppliesEfficiency) {
  Battery battery(small_battery());
  const double stored = battery.charge_from_grid(1.0);
  EXPECT_DOUBLE_EQ(stored, 0.8);  // 1 MWh from grid -> 0.8 MWh stored
  EXPECT_DOUBLE_EQ(battery.charge_mwh(), 0.8);
}

TEST(Battery, ChargeRateLimited) {
  Battery battery(small_battery());
  const double stored = battery.charge_from_grid(10.0);
  EXPECT_DOUBLE_EQ(stored, 0.8);  // clamped to 1 MW at the terminals
}

TEST(Battery, CapacityLimited) {
  Battery battery(small_battery());
  for (int k = 0; k < 10; ++k) battery.charge_from_grid(1.0);
  EXPECT_DOUBLE_EQ(battery.charge_mwh(), 2.0);
  EXPECT_DOUBLE_EQ(battery.available_charge_mw(), 0.0);
}

TEST(Battery, DischargeRateAndContentLimited) {
  Battery battery(small_battery());
  battery.charge_from_grid(1.0);  // 0.8 stored
  // Rate allows 0.8 MW; content allows 0.8 MWh -> both bind at 0.8.
  EXPECT_DOUBLE_EQ(battery.discharge(5.0), 0.8);
  EXPECT_DOUBLE_EQ(battery.charge_mwh(), 0.0);
  EXPECT_DOUBLE_EQ(battery.discharge(1.0), 0.0);  // empty
}

TEST(Battery, PartialDischarge) {
  Battery battery(small_battery());
  battery.charge_from_grid(1.0);
  EXPECT_DOUBLE_EQ(battery.discharge(0.3), 0.3);
  EXPECT_DOUBLE_EQ(battery.charge_mwh(), 0.5);
}

TEST(Battery, RoundTripConservesEnergyTimesEfficiency) {
  Battery battery(small_battery());
  double grid_in = 0.0, delivered = 0.0;
  for (int k = 0; k < 3; ++k) {
    grid_in += 1.0;
    battery.charge_from_grid(1.0);
  }
  while (true) {
    const double out = battery.discharge(0.8);
    if (out <= 0.0) break;
    delivered += out;
  }
  EXPECT_NEAR(delivered, std::min(grid_in * 0.8, 2.0), 1e-12);
}

TEST(Battery, InvalidSpecsThrow) {
  BatterySpec bad = small_battery();
  bad.round_trip_efficiency = 0.0;
  EXPECT_THROW(Battery{bad}, ContractViolation);
  bad = small_battery();
  bad.capacity_mwh = -1.0;
  EXPECT_THROW(Battery{bad}, ContractViolation);
}

TEST(Battery, NegativeRequestsThrow) {
  Battery battery(small_battery());
  EXPECT_THROW(battery.charge_from_grid(-0.1), ContractViolation);
  EXPECT_THROW(battery.discharge(-0.1), ContractViolation);
}

}  // namespace
}  // namespace ufc
