#include <gtest/gtest.h>

#include "helpers.hpp"
#include "model/breakdown.hpp"

namespace ufc {
namespace {

using ::ufc::testing::make_tiny_problem;

// Nearest-routing operating point used throughout: FE0 -> DC0, FE1 -> DC1.
Mat nearest_routing() {
  Mat lambda(2, 2, 0.0);
  lambda(0, 0) = 600.0;
  lambda(1, 1) = 400.0;
  return lambda;
}

TEST(Evaluate, GridOnlyPointHandComputed) {
  const auto p = make_tiny_problem();
  const auto b = evaluate(p, nearest_routing(), Vec{0.0, 0.0});

  // Utility: -w (A0 l0^2 + A1 l1^2) = -10 (600*1e-4 + 400*2.25e-4) = -1.5.
  EXPECT_NEAR(b.utility, -1.5, 1e-9);
  // Demands: DC0 = 0.192 MW, DC1 = 0.144 MW, all grid.
  EXPECT_NEAR(b.demand_mwh, 0.336, 1e-12);
  EXPECT_NEAR(b.grid_mwh, 0.336, 1e-12);
  EXPECT_NEAR(b.fuel_cell_mwh, 0.0, 1e-12);
  // Grid cost: 30*0.192 + 90*0.144 = 5.76 + 12.96 = 18.72.
  EXPECT_NEAR(b.grid_cost, 18.72, 1e-9);
  EXPECT_NEAR(b.energy_cost, 18.72, 1e-9);
  // Carbon: 0.192*0.8 + 0.144*0.25 = 0.1536 + 0.036 = 0.1896 t -> $4.74.
  EXPECT_NEAR(b.carbon_tons, 0.1896, 1e-9);
  EXPECT_NEAR(b.carbon_cost, 4.74, 1e-9);
  EXPECT_NEAR(b.ufc, -1.5 - 18.72 - 4.74, 1e-9);
  EXPECT_NEAR(b.utilization, 0.0, 1e-12);
  // Latency: (600*10 + 400*15) / 1000 = 12 ms.
  EXPECT_NEAR(b.avg_latency_ms, 12.0, 1e-9);
}

TEST(Evaluate, FuelCellOnlyPointHandComputed) {
  const auto p = make_tiny_problem();
  const Vec mu{0.192, 0.144};  // exactly the demands
  const auto b = evaluate(p, nearest_routing(), mu);
  EXPECT_NEAR(b.fuel_cell_cost, 80.0 * 0.336, 1e-9);
  EXPECT_NEAR(b.grid_cost, 0.0, 1e-12);
  EXPECT_NEAR(b.carbon_tons, 0.0, 1e-12);
  EXPECT_NEAR(b.carbon_cost, 0.0, 1e-12);
  EXPECT_NEAR(b.utilization, 1.0, 1e-9);
}

TEST(Evaluate, PartialFuelCellSplitsCosts) {
  const auto p = make_tiny_problem();
  const Vec mu{0.1, 0.0};
  const auto b = evaluate(p, nearest_routing(), mu);
  EXPECT_NEAR(b.grid_mwh, 0.336 - 0.1, 1e-12);
  EXPECT_NEAR(b.fuel_cell_mwh, 0.1, 1e-12);
  EXPECT_NEAR(b.energy_cost, 30.0 * 0.092 + 90.0 * 0.144 + 80.0 * 0.1, 1e-9);
  EXPECT_NEAR(b.utilization, 0.1 / 0.336, 1e-9);
}

TEST(Evaluate, ExcessMuClampsGridDrawAtZero) {
  const auto p = make_tiny_problem();
  const Vec mu{10.0, 10.0};  // way above demand
  const auto b = evaluate(p, nearest_routing(), mu);
  EXPECT_DOUBLE_EQ(b.grid_mwh, 0.0);
  EXPECT_DOUBLE_EQ(b.carbon_tons, 0.0);
}

TEST(MinObjective, EqualsNegativeUfcAtBalancedPoint) {
  const auto p = make_tiny_problem();
  const Mat lambda = nearest_routing();
  const Vec mu{0.05, 0.02};
  const Vec nu = grid_draw_mw(p, lambda, mu);
  const double ufc = ufc_objective(p, lambda, mu);
  EXPECT_NEAR(min_objective(p, lambda, mu, nu), -ufc, 1e-9);
}

TEST(ImprovementPercent, MatchesDefinition) {
  EXPECT_DOUBLE_EQ(improvement_percent(-50.0, -100.0), 50.0);
  EXPECT_DOUBLE_EQ(improvement_percent(-150.0, -100.0), -50.0);
  EXPECT_DOUBLE_EQ(improvement_percent(-100.0, -100.0), 0.0);
  EXPECT_DOUBLE_EQ(improvement_percent(5.0, 0.0), 0.0);  // degenerate
}

TEST(Evaluate, ZeroWorkloadHasIdleCostOnly) {
  const auto p = make_tiny_problem();
  Mat lambda(2, 2, 0.0);
  auto q = p;
  q.arrivals = {0.0, 0.0};
  const auto b = evaluate(q, lambda, Vec{0.0, 0.0});
  EXPECT_NEAR(b.utility, 0.0, 1e-12);
  EXPECT_NEAR(b.demand_mwh, q.alpha_mw(0) + q.alpha_mw(1), 1e-12);
  EXPECT_DOUBLE_EQ(b.avg_latency_ms, 0.0);
}

}  // namespace
}  // namespace ufc
