#include <gtest/gtest.h>

#include "helpers.hpp"
#include "model/problem.hpp"
#include "util/contract.hpp"

namespace ufc {
namespace {

using ::ufc::testing::make_tiny_problem;

TEST(UfcProblem, ValidatesCleanInstance) {
  const auto p = make_tiny_problem();
  EXPECT_NO_THROW(p.validate());
  EXPECT_EQ(p.num_datacenters(), 2u);
  EXPECT_EQ(p.num_front_ends(), 2u);
}

TEST(UfcProblem, DerivedQuantities) {
  const auto p = make_tiny_problem();
  EXPECT_NEAR(p.alpha_mw(0), 1000.0 * 100.0 * 1.2 / 1e6, 1e-12);
  EXPECT_NEAR(p.beta_mw(0), 1.2e-4, 1e-18);
  EXPECT_NEAR(p.demand_mw(0, 500.0), 0.12 + 0.06, 1e-12);
  EXPECT_DOUBLE_EQ(p.total_arrivals(), 1000.0);
  EXPECT_DOUBLE_EQ(p.total_server_capacity(), 1800.0);
  EXPECT_DOUBLE_EQ(p.max_latency_s(), 0.040);
}

TEST(UfcProblem, AverageLatency) {
  const auto p = make_tiny_problem();
  // Front-end 0 (A = 600): all to DC0 -> 10 ms.
  EXPECT_NEAR(p.average_latency_s(0, Vec{600.0, 0.0}), 0.010, 1e-12);
  // Even split -> 20 ms.
  EXPECT_NEAR(p.average_latency_s(0, Vec{300.0, 300.0}), 0.020, 1e-12);
}

TEST(UfcProblem, ZeroArrivalLatencyIsZero) {
  auto p = make_tiny_problem();
  p.arrivals[0] = 0.0;
  EXPECT_DOUBLE_EQ(p.average_latency_s(0, Vec{0.0, 0.0}), 0.0);
}

TEST(UfcProblem, ValidateRejectsMalformedInstances) {
  {
    auto p = make_tiny_problem();
    p.utility = nullptr;
    EXPECT_THROW(p.validate(), ContractViolation);
  }
  {
    auto p = make_tiny_problem();
    p.arrivals[0] = -1.0;
    EXPECT_THROW(p.validate(), ContractViolation);
  }
  {
    auto p = make_tiny_problem();
    p.datacenters[0].emission_cost = nullptr;
    EXPECT_THROW(p.validate(), ContractViolation);
  }
  {
    auto p = make_tiny_problem();
    p.arrivals = {5000.0, 5000.0};  // exceeds 1800 servers
    EXPECT_THROW(p.validate(), ContractViolation);
  }
  {
    auto p = make_tiny_problem();
    p.latency_s = Mat(3, 2);  // wrong shape
    EXPECT_THROW(p.validate(), ContractViolation);
  }
  {
    auto p = make_tiny_problem();
    p.datacenters[1].pue = 0.5;
    EXPECT_THROW(p.validate(), ContractViolation);
  }
}

TEST(UfcProblem, HeterogeneousPowerOverride) {
  auto p = make_tiny_problem();
  // Datacenter 1 runs newer, hungrier servers: 150 W idle / 320 W peak.
  p.datacenters[1].power_override = ServerPowerModel{150.0, 320.0};
  EXPECT_NO_THROW(p.validate());
  // Datacenter 0 keeps the fleet default.
  EXPECT_NEAR(p.alpha_mw(0), 1000.0 * 100.0 * 1.2 / 1e6, 1e-12);
  EXPECT_NEAR(p.beta_mw(0), 1.2e-4, 1e-18);
  // Datacenter 1 uses the override.
  EXPECT_NEAR(p.alpha_mw(1), 800.0 * 150.0 * 1.2 / 1e6, 1e-12);
  EXPECT_NEAR(p.beta_mw(1), (320.0 - 150.0) * 1.2 / 1e6, 1e-18);
  EXPECT_EQ(&p.power_at(1), &*p.datacenters[1].power_override);
}

TEST(UfcProblem, InvalidPowerOverrideRejected) {
  auto p = make_tiny_problem();
  p.datacenters[0].power_override = ServerPowerModel{200.0, 100.0};  // inverted
  EXPECT_THROW(p.validate(), ContractViolation);
}

TEST(GridDraw, ComputesPowerBalance) {
  const auto p = make_tiny_problem();
  Mat lambda(2, 2, 0.0);
  lambda(0, 0) = 600.0;
  lambda(1, 1) = 400.0;
  const Vec nu = grid_draw_mw(p, lambda, Vec{0.05, 0.0});
  EXPECT_NEAR(nu[0], p.demand_mw(0, 600.0) - 0.05, 1e-12);
  EXPECT_NEAR(nu[1], p.demand_mw(1, 400.0), 1e-12);
}

TEST(ConstraintViolation, ZeroForFeasiblePoint) {
  const auto p = make_tiny_problem();
  Mat lambda(2, 2, 0.0);
  lambda(0, 0) = 600.0;
  lambda(1, 1) = 400.0;
  EXPECT_DOUBLE_EQ(constraint_violation(p, lambda, Vec{0.0, 0.0}), 0.0);
}

TEST(ConstraintViolation, DetectsEachViolationKind) {
  const auto p = make_tiny_problem();
  Mat lambda(2, 2, 0.0);
  lambda(0, 0) = 600.0;
  lambda(1, 1) = 400.0;

  {  // Load balance: route less than the arrivals.
    Mat bad = lambda;
    bad(0, 0) = 500.0;
    EXPECT_NEAR(constraint_violation(p, bad, Vec{0.0, 0.0}), 100.0, 1e-9);
  }
  {  // Capacity: overload datacenter 1 (800 servers).
    Mat bad(2, 2, 0.0);
    bad(0, 1) = 600.0;
    bad(1, 1) = 400.0;
    EXPECT_NEAR(constraint_violation(p, bad, Vec{0.0, 0.0}), 200.0, 1e-9);
  }
  {  // Power balance: mu exceeding demand makes nu negative.
    const double demand0 = p.demand_mw(0, 600.0);
    EXPECT_NEAR(constraint_violation(p, lambda, Vec{demand0 + 0.5, 0.0}), 0.5,
                1e-9);
  }
  {  // mu above capacity.
    const double cap = p.datacenters[0].fuel_cell_capacity_mw;
    Vec mu{cap + 1.0, 0.0};
    EXPECT_GE(constraint_violation(p, lambda, mu), 1.0 - 1e-9);
  }
  {  // Negative routing entry.
    Mat bad = lambda;
    bad(0, 1) = -3.0;
    bad(0, 0) = 603.0;
    EXPECT_NEAR(constraint_violation(p, bad, Vec{0.0, 0.0}), 3.0, 1e-9);
  }
}

}  // namespace
}  // namespace ufc
