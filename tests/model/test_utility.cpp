#include <gtest/gtest.h>

#include <cmath>

#include "model/utility.hpp"
#include "util/contract.hpp"

namespace ufc {
namespace {

// Finite-difference check used for every utility shape.
void expect_derivative_consistent(const UtilityFunction& u, double l) {
  const double h = 1e-7;
  const double fd = (u.value(l + h) - u.value(l - h)) / (2.0 * h);
  EXPECT_NEAR(u.derivative(l), fd, 1e-4 * std::max(1.0, std::abs(fd)));
}

void expect_decreasing_and_concave(const UtilityFunction& u) {
  double prev_value = u.value(0.0);
  double prev_slope = u.derivative(0.0);
  for (double l = 0.005; l <= 0.1; l += 0.005) {
    const double v = u.value(l);
    const double s = u.derivative(l);
    EXPECT_LE(v, prev_value + 1e-12);  // non-increasing
    EXPECT_LE(s, prev_slope + 1e-12);  // concave: derivative non-increasing
    prev_value = v;
    prev_slope = s;
  }
}

TEST(QuadraticUtility, MatchesPaperEquation) {
  QuadraticUtility u;
  EXPECT_DOUBLE_EQ(u.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(u.value(0.02), -0.0004);
  EXPECT_DOUBLE_EQ(u.derivative(0.02), -0.04);
  EXPECT_DOUBLE_EQ(u.max_curvature(1.0), 2.0);
}

TEST(QuadraticUtility, ShapeProperties) {
  QuadraticUtility u;
  expect_decreasing_and_concave(u);
  for (double l : {0.0, 0.01, 0.05}) expect_derivative_consistent(u, l);
}

TEST(LinearUtility, Values) {
  LinearUtility u;
  EXPECT_DOUBLE_EQ(u.value(0.03), -0.03);
  EXPECT_DOUBLE_EQ(u.derivative(10.0), -1.0);
  EXPECT_DOUBLE_EQ(u.max_curvature(100.0), 0.0);
}

TEST(ExponentialUtility, Values) {
  ExponentialUtility u(0.02);
  EXPECT_DOUBLE_EQ(u.value(0.0), 0.0);
  EXPECT_NEAR(u.value(0.02), -(std::exp(1.0) - 1.0), 1e-12);
  expect_decreasing_and_concave(u);
  for (double l : {0.0, 0.01, 0.05}) expect_derivative_consistent(u, l);
}

TEST(ExponentialUtility, CurvatureBoundsSecondDerivative) {
  ExponentialUtility u(0.02);
  const double lmax = 0.05;
  const double bound = u.max_curvature(lmax);
  for (double l = 0.0; l <= lmax; l += 0.005) {
    const double h = 1e-5;
    const double second =
        (u.value(l + h) - 2.0 * u.value(l) + u.value(l - h)) / (h * h);
    EXPECT_LE(std::abs(second), bound * (1.0 + 1e-3));
  }
}

TEST(ExponentialUtility, NonPositiveThetaThrows) {
  EXPECT_THROW(ExponentialUtility(0.0), ContractViolation);
  EXPECT_THROW(ExponentialUtility(-1.0), ContractViolation);
}

TEST(UtilityClone, PreservesBehaviour) {
  ExponentialUtility u(0.03);
  const auto clone = u.clone();
  EXPECT_EQ(clone->name(), "exponential");
  EXPECT_DOUBLE_EQ(clone->value(0.01), u.value(0.01));

  QuadraticUtility q;
  EXPECT_DOUBLE_EQ(q.clone()->derivative(0.5), q.derivative(0.5));
  LinearUtility l;
  EXPECT_DOUBLE_EQ(l.clone()->value(0.5), l.value(0.5));
}

}  // namespace
}  // namespace ufc
