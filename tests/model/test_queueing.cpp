#include <gtest/gtest.h>

#include <cmath>

#include "helpers.hpp"
#include "model/queueing.hpp"
#include "util/contract.hpp"

namespace ufc {
namespace {

using ::ufc::testing::make_tiny_problem;

TEST(ErlangC, SingleServerReducesToMm1) {
  // For c = 1, the waiting probability equals the utilization rho.
  for (double rho : {0.1, 0.5, 0.9}) {
    EXPECT_NEAR(erlang_c_wait_probability(rho, 1.0), rho, 1e-12);
  }
}

TEST(ErlangC, KnownTextbookValue) {
  // a = 2 Erlangs, c = 3 servers: C(3, 2) = 4/9 (standard worked example).
  EXPECT_NEAR(erlang_c_wait_probability(2.0, 3.0), 4.0 / 9.0, 1e-9);
}

TEST(ErlangC, ZeroLoadNeverWaits) {
  EXPECT_DOUBLE_EQ(erlang_c_wait_probability(0.0, 5.0), 0.0);
}

TEST(ErlangC, MonotoneInLoadAndServers) {
  EXPECT_LT(erlang_c_wait_probability(1.0, 4.0),
            erlang_c_wait_probability(3.0, 4.0));
  EXPECT_GT(erlang_c_wait_probability(3.0, 4.0),
            erlang_c_wait_probability(3.0, 8.0));
}

TEST(ErlangC, UnstableLoadThrows) {
  EXPECT_THROW(erlang_c_wait_probability(5.0, 5.0), ContractViolation);
}

TEST(MmcWait, Mm1ClosedForm) {
  // M/M/1: W_q = rho / (mu - lambda).
  const double lambda = 8.0, mu = 10.0;
  EXPECT_NEAR(mmc_mean_wait_s(lambda, mu, 1.0),
              (lambda / mu) / (mu - lambda), 1e-12);
}

TEST(MmcWait, UnstableQueueIsInfinite) {
  EXPECT_TRUE(std::isinf(mmc_mean_wait_s(100.0, 10.0, 5.0)));
}

TEST(MmcWait, LargeFleetAtModerateLoadWaitsNegligibly) {
  // 1000 servers at 60% utilization: essentially no queueing.
  const double wait = mmc_mean_wait_s(600.0 * 20.0, 20.0, 1000.0);
  EXPECT_LT(wait, 1e-6);
}

TEST(AssessQueueing, PaperAssumptionHoldsAtModerateLoad) {
  // The check the module exists for: at the paper's operating points,
  // queueing is negligible next to propagation.
  const auto p = make_tiny_problem();
  Mat lambda(2, 2, 0.0);
  lambda(0, 0) = 600.0;
  lambda(1, 1) = 400.0;  // 60% / 50% utilization
  const auto assessment = assess_queueing(p, lambda);
  EXPECT_TRUE(assessment.stable);
  EXPECT_NEAR(assessment.avg_propagation_ms, 12.0, 1e-9);
  EXPECT_LT(assessment.avg_queueing_ms, 0.1);
  EXPECT_LT(assessment.queueing_share, 0.01);
}

TEST(AssessQueueing, SaturatedSiteFlagsInstabilityAndDominates) {
  const auto p = make_tiny_problem();
  Mat lambda(2, 2, 0.0);
  lambda(0, 0) = 600.0;
  lambda(1, 0) = 400.0;  // 100% of datacenter 0 -> above the cap
  const auto assessment = assess_queueing(p, lambda);
  EXPECT_FALSE(assessment.stable);
  EXPECT_GT(assessment.avg_queueing_ms, 0.0);
}

TEST(AssessQueueing, InvalidParamsThrow) {
  const auto p = make_tiny_problem();
  Mat lambda(2, 2, 0.0);
  QueueingModelParams bad;
  bad.utilization_cap = 1.0;
  EXPECT_THROW(assess_queueing(p, lambda, bad), ContractViolation);
  bad = {};
  bad.service_rate_per_server = 0.0;
  EXPECT_THROW(assess_queueing(p, lambda, bad), ContractViolation);
}

}  // namespace
}  // namespace ufc
