#include <gtest/gtest.h>

#include "model/emission.hpp"
#include "util/contract.hpp"

namespace ufc {
namespace {

void expect_convex_nondecreasing(const EmissionCostFunction& v,
                                 double hi = 100.0) {
  double prev_value = v.value(0.0);
  double prev_slope = v.derivative(0.0);
  EXPECT_GE(prev_slope, 0.0);
  for (double e = hi / 50.0; e <= hi; e += hi / 50.0) {
    const double val = v.value(e);
    const double slope = v.derivative(e);
    EXPECT_GE(val, prev_value - 1e-12);   // non-decreasing
    EXPECT_GE(slope, prev_slope - 1e-12); // convex
    prev_value = val;
    prev_slope = slope;
  }
}

TEST(AffineCarbonTax, LinearInEmission) {
  AffineCarbonTax tax(25.0);
  EXPECT_DOUBLE_EQ(tax.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(tax.value(2.0), 50.0);
  EXPECT_DOUBLE_EQ(tax.derivative(123.0), 25.0);
  EXPECT_DOUBLE_EQ(tax.rate(), 25.0);
  expect_convex_nondecreasing(tax);
}

TEST(AffineCarbonTax, NegativeRateThrows) {
  EXPECT_THROW(AffineCarbonTax(-1.0), ContractViolation);
}

TEST(CapAndTrade, FreeBelowCap) {
  CapAndTradeCost policy(10.0, 40.0);
  EXPECT_DOUBLE_EQ(policy.value(5.0), 0.0);
  EXPECT_DOUBLE_EQ(policy.derivative(5.0), 0.0);
  EXPECT_DOUBLE_EQ(policy.value(15.0), 200.0);
  EXPECT_DOUBLE_EQ(policy.derivative(15.0), 40.0);
  expect_convex_nondecreasing(policy);
}

TEST(SteppedCarbonTax, BracketAccumulation) {
  // 10 $/t below 2 t, 20 $/t from 2-5 t, 50 $/t beyond.
  SteppedCarbonTax tax({2.0, 5.0}, {10.0, 20.0, 50.0});
  EXPECT_DOUBLE_EQ(tax.value(0.0), 0.0);
  EXPECT_DOUBLE_EQ(tax.value(1.0), 10.0);
  EXPECT_DOUBLE_EQ(tax.value(2.0), 20.0);
  EXPECT_DOUBLE_EQ(tax.value(4.0), 60.0);
  EXPECT_DOUBLE_EQ(tax.value(6.0), 130.0);
  EXPECT_DOUBLE_EQ(tax.derivative(1.0), 10.0);
  EXPECT_DOUBLE_EQ(tax.derivative(3.0), 20.0);
  EXPECT_DOUBLE_EQ(tax.derivative(100.0), 50.0);
  expect_convex_nondecreasing(tax, 10.0);
}

TEST(SteppedCarbonTax, DecreasingRatesThrow) {
  EXPECT_THROW(SteppedCarbonTax({2.0}, {20.0, 10.0}), ContractViolation);
}

TEST(SteppedCarbonTax, MismatchedSizesThrow) {
  EXPECT_THROW(SteppedCarbonTax({1.0, 2.0}, {1.0, 2.0}), ContractViolation);
}

TEST(QuadraticEmissionCost, ValuesAndDerivative) {
  QuadraticEmissionCost cost(10.0, 2.0);
  EXPECT_DOUBLE_EQ(cost.value(3.0), 48.0);
  EXPECT_DOUBLE_EQ(cost.derivative(3.0), 22.0);
  expect_convex_nondecreasing(cost);
}

TEST(EmissionClone, PreservesBehaviour) {
  SteppedCarbonTax tax({1.0}, {5.0, 15.0});
  const auto clone = tax.clone();
  EXPECT_DOUBLE_EQ(clone->value(2.0), tax.value(2.0));
  EXPECT_EQ(clone->name(), "stepped-tax");
}

TEST(FuelCarbonFactor, MatchesPaperTableIII) {
  EXPECT_DOUBLE_EQ(fuel_carbon_factor(FuelType::Nuclear), 15.0);
  EXPECT_DOUBLE_EQ(fuel_carbon_factor(FuelType::Coal), 968.0);
  EXPECT_DOUBLE_EQ(fuel_carbon_factor(FuelType::Gas), 440.0);
  EXPECT_DOUBLE_EQ(fuel_carbon_factor(FuelType::Oil), 890.0);
  EXPECT_DOUBLE_EQ(fuel_carbon_factor(FuelType::Hydro), 13.5);
  EXPECT_DOUBLE_EQ(fuel_carbon_factor(FuelType::Wind), 22.5);
}

TEST(CarbonRate, WeightedAverageOfMix) {
  // Paper eq. (1): pure coal -> 968; 50/50 coal/gas -> 704.
  FuelMix coal{};
  coal[static_cast<std::size_t>(FuelType::Coal)] = 10.0;
  EXPECT_DOUBLE_EQ(carbon_rate_kg_per_mwh(coal), 968.0);

  FuelMix mixed{};
  mixed[static_cast<std::size_t>(FuelType::Coal)] = 5.0;
  mixed[static_cast<std::size_t>(FuelType::Gas)] = 5.0;
  EXPECT_DOUBLE_EQ(carbon_rate_kg_per_mwh(mixed), 704.0);
}

TEST(CarbonRate, EmptyMixThrows) {
  FuelMix empty{};
  EXPECT_THROW(carbon_rate_kg_per_mwh(empty), ContractViolation);
}

TEST(CarbonRate, NegativeGenerationThrows) {
  FuelMix bad{};
  bad[0] = -1.0;
  bad[1] = 2.0;
  EXPECT_THROW(carbon_rate_kg_per_mwh(bad), ContractViolation);
}

}  // namespace
}  // namespace ufc
