#include <gtest/gtest.h>

#include "helpers.hpp"
#include "model/metrics.hpp"
#include "util/contract.hpp"

namespace ufc {
namespace {

using ::ufc::testing::make_tiny_problem;

Mat nearest_routing() {
  Mat lambda(2, 2, 0.0);
  lambda(0, 0) = 600.0;
  lambda(1, 1) = 400.0;
  return lambda;
}

TEST(ComplementaryIndexes, PueRecoversConfiguredValue) {
  // Both datacenters run at PUE 1.2, so the fleet PUE is exactly 1.2.
  const auto p = make_tiny_problem();
  const auto metrics =
      complementary_indexes(p, nearest_routing(), Vec{0.0, 0.0});
  EXPECT_NEAR(metrics.pue, 1.2, 1e-9);
}

TEST(ComplementaryIndexes, CueGridOnlyHandComputed) {
  const auto p = make_tiny_problem();
  const auto metrics =
      complementary_indexes(p, nearest_routing(), Vec{0.0, 0.0});
  // IT energy = (0.192 + 0.144)/1.2 = 0.28 MWh.
  EXPECT_NEAR(metrics.it_energy_mwh, 0.28, 1e-9);
  // Grid carbon = 0.192*800 + 0.144*250 = 189.6 kg over 280 kWh.
  EXPECT_NEAR(metrics.cue_kg_per_kwh, 189.6 / 280.0, 1e-9);
}

TEST(ComplementaryIndexes, FuelCellsDriveCueToZero) {
  const auto p = make_tiny_problem();
  const Vec full_dispatch{0.192, 0.144};
  const auto metrics =
      complementary_indexes(p, nearest_routing(), full_dispatch);
  EXPECT_NEAR(metrics.cue_kg_per_kwh, 0.0, 1e-12);
  // PUE is a pure facility-overhead metric: unchanged by the energy source.
  EXPECT_NEAR(metrics.pue, 1.2, 1e-9);
}

TEST(ComplementaryIndexes, ErpHandComputed) {
  const auto p = make_tiny_problem();
  const auto metrics =
      complementary_indexes(p, nearest_routing(), Vec{0.0, 0.0});
  // Mean latency 12 ms; facility power 336 kW -> ERP = 336 * 0.012.
  EXPECT_NEAR(metrics.erp_kws, 336.0 * 0.012, 1e-9);
}

TEST(ComplementaryIndexes, CueBlindToWhereCarbonMatters) {
  // The paper's argument that single-facility indexes mislead: routing all
  // flexible load to the dirty-cheap site barely moves PUE but hurts CUE.
  const auto p = make_tiny_problem();
  Mat dirty(2, 2, 0.0);
  dirty(0, 0) = 600.0;
  dirty(1, 0) = 400.0;  // everything to the 800 kg/MWh site
  const auto clean_metrics =
      complementary_indexes(p, nearest_routing(), Vec{0.0, 0.0});
  const auto dirty_metrics =
      complementary_indexes(p, dirty, Vec{0.0, 0.0});
  EXPECT_GT(dirty_metrics.cue_kg_per_kwh, clean_metrics.cue_kg_per_kwh);
  EXPECT_NEAR(dirty_metrics.pue, clean_metrics.pue, 1e-9);
}

TEST(ComplementaryIndexes, DimensionMismatchThrows) {
  const auto p = make_tiny_problem();
  EXPECT_THROW(complementary_indexes(p, Mat(3, 2), Vec{0.0, 0.0}),
               ContractViolation);
  EXPECT_THROW(complementary_indexes(p, nearest_routing(), Vec{0.0}),
               ContractViolation);
}

}  // namespace
}  // namespace ufc
