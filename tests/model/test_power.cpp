#include <gtest/gtest.h>

#include "model/power.hpp"
#include "util/contract.hpp"

namespace ufc {
namespace {

TEST(PowerModel, PaperSettingAlphaBeta) {
  // Paper §IV-A: P_idle = 100 W, P_peak = 200 W, PUE = 1.2, 2e4 servers:
  // alpha = 2e4 * 100 * 1.2 W = 2.4 MW; beta = 100 * 1.2 W = 1.2e-4 MW.
  const ServerPowerModel model{100.0, 200.0};
  EXPECT_NEAR(power_alpha_mw(2e4, model, 1.2), 2.4, 1e-12);
  EXPECT_NEAR(power_beta_mw(model, 1.2), 1.2e-4, 1e-18);
}

TEST(PowerModel, DemandIsAffineInWorkload) {
  const ServerPowerModel model{100.0, 200.0};
  const double idle = power_demand_mw(1000.0, model, 1.2, 0.0);
  const double half = power_demand_mw(1000.0, model, 1.2, 500.0);
  const double full = power_demand_mw(1000.0, model, 1.2, 1000.0);
  EXPECT_NEAR(idle, 0.12, 1e-12);
  EXPECT_NEAR(half - idle, (full - idle) / 2.0, 1e-12);
  // At full load every server draws P_peak * PUE.
  EXPECT_NEAR(full, 1000.0 * 200.0 * 1.2 / 1e6, 1e-12);
}

TEST(PowerModel, PueOfOneMeansNoOverhead) {
  const ServerPowerModel model{50.0, 150.0};
  EXPECT_NEAR(power_demand_mw(100.0, model, 1.0, 100.0),
              100.0 * 150.0 / 1e6, 1e-15);
}

TEST(PowerModel, InvalidInputsThrow) {
  const ServerPowerModel model{100.0, 200.0};
  EXPECT_THROW(power_alpha_mw(-1.0, model, 1.2), ContractViolation);
  EXPECT_THROW(power_alpha_mw(10.0, model, 0.9), ContractViolation);
  EXPECT_THROW(power_demand_mw(10.0, model, 1.2, -5.0), ContractViolation);
  const ServerPowerModel inverted{200.0, 100.0};
  EXPECT_THROW(power_beta_mw(inverted, 1.2), ContractViolation);
}

}  // namespace
}  // namespace ufc
