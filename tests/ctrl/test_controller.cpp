// The single-tenant receding-horizon controller.
//
// The acceptance property of the whole tentpole lives here: N control ticks
// at a budget of k iterations on an unchanged problem produce solver state
// bit-identical to one (N*k)-iteration solve — serially and with solver
// threads — so a tick deadline only ever decides WHEN iterations happen,
// never WHAT they compute. The remaining tests pin the status lifecycle
// (BudgetExhausted ticks resume, Converged ticks certify), the cold-restart
// baseline's amnesia and the metrics export.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <vector>

#include "admm/admg.hpp"
#include "admm/engine.hpp"
#include "admm/solve_core.hpp"
#include "ctrl/controller.hpp"
#include "helpers.hpp"
#include "obs/metrics.hpp"
#include "util/contract.hpp"

namespace ufc::ctrl {
namespace {

using ::ufc::testing::make_random_problem;
using ::ufc::testing::make_tiny_problem;

/// Tolerance far below reach, so every tick spends its whole budget and the
/// chunked-vs-one-shot trajectories stay comparable step for step.
ControllerOptions never_converge_options(int budget) {
  ControllerOptions options;
  options.max_iters_per_tick = budget;
  options.admg.tolerance = 1e-12;
  options.admg.record_trace = false;
  options.admg.warn_on_unconverged = false;
  return options;
}

TEST(Controller, RejectsNonPositiveBudget) {
  ControllerOptions options;
  options.max_iters_per_tick = 0;
  EXPECT_THROW(Controller(make_tiny_problem(), options), ContractViolation);
}

TEST(Controller, BudgetedTicksBitIdenticalToOneLongSolve) {
  const UfcProblem problem = make_random_problem(23, 5, 3);
  constexpr int kTicks = 6;
  constexpr int kBudget = 5;

  Controller controller(problem, never_converge_options(kBudget));
  const admm::ProblemUpdate no_change;
  for (int t = 0; t < kTicks; ++t) {
    const TickReport tick = controller.tick(no_change);
    EXPECT_EQ(tick.tick, t);
    EXPECT_EQ(tick.report.iterations, kBudget);
    EXPECT_EQ(tick.report.status, admm::SolveStatus::BudgetExhausted);
  }
  EXPECT_EQ(controller.ticks(), kTicks);
  EXPECT_EQ(controller.total_iterations(), kTicks * kBudget);

  admm::AdmgOptions one_shot = never_converge_options(kBudget).admg;
  one_shot.max_iterations = kTicks * kBudget;
  admm::AdmgSolver reference(problem, one_shot);
  reference.solve();

  EXPECT_EQ(controller.solver().checkpoint(), reference.checkpoint());
}

TEST(Controller, BudgetedTicksBitIdenticalUnderSolverThreads) {
  const UfcProblem problem = make_random_problem(29, 8, 4);
  constexpr int kTicks = 4;
  constexpr int kBudget = 6;

  ControllerOptions options = never_converge_options(kBudget);
  options.admg.threads = 4;
  Controller controller(problem, options);
  const admm::ProblemUpdate no_change;
  for (int t = 0; t < kTicks; ++t) controller.tick(no_change);

  admm::AdmgOptions one_shot = options.admg;
  one_shot.max_iterations = kTicks * kBudget;
  admm::AdmgSolver reference(problem, one_shot);
  reference.solve();

  EXPECT_EQ(controller.solver().checkpoint(), reference.checkpoint());
}

TEST(Controller, ResumesAcrossTicksUntilConverged) {
  ControllerOptions options;
  options.max_iters_per_tick = 5;
  options.admg.record_trace = false;
  Controller controller(make_tiny_problem(), options);

  const admm::ProblemUpdate no_change;
  int ticks_to_converge = 0;
  admm::SolveStatus last = admm::SolveStatus::BudgetExhausted;
  for (int t = 0; t < 400 && last != admm::SolveStatus::Converged; ++t) {
    last = controller.tick(no_change).report.status;
    ++ticks_to_converge;
  }
  ASSERT_EQ(last, admm::SolveStatus::Converged);
  // The tiny problem needs more than one 5-iteration tick, so the early
  // ticks must have reported best-so-far and resumed.
  EXPECT_GT(ticks_to_converge, 1);
  EXPECT_EQ(controller.budget_exhausted_ticks(), ticks_to_converge - 1);
  EXPECT_EQ(controller.converged_ticks(), 1);
  EXPECT_TRUE(controller.solver().is_converged());

  // Once converged on a static problem, the next tick certifies again
  // almost for free — the warm iterate is already at the optimum.
  const TickReport after = controller.tick(no_change);
  EXPECT_EQ(after.report.status, admm::SolveStatus::Converged);
  EXPECT_LE(after.report.iterations, 2);
}

TEST(Controller, ColdRestartForgetsTheWarmIterate) {
  ControllerOptions options = never_converge_options(8);
  options.cold_restart = true;
  Controller cold(make_tiny_problem(), options);

  const admm::ProblemUpdate no_change;
  cold.tick(no_change);
  const std::vector<std::byte> after_first = cold.solver().checkpoint();
  cold.tick(no_change);
  // Every tick re-runs the identical 8 iterations from the cold start, so
  // the state after tick 2 equals the state after tick 1 bitwise.
  EXPECT_EQ(cold.solver().checkpoint(), after_first);

  // The warm controller keeps moving: same second tick, different state.
  options.cold_restart = false;
  Controller warm(make_tiny_problem(), options);
  warm.tick(no_change);
  warm.tick(no_change);
  EXPECT_NE(warm.solver().checkpoint(), after_first);
}

TEST(Controller, AppliesUpdatesBeforeSolving) {
  ControllerOptions options;
  options.max_iters_per_tick = 2000;
  options.admg.record_trace = false;
  Controller controller(make_tiny_problem(), options);

  admm::ProblemUpdate repricing;
  repricing.grid_prices.emplace_back(0, 55.0);
  const TickReport tick = controller.tick(repricing);
  EXPECT_EQ(tick.report.status, admm::SolveStatus::Converged);
  EXPECT_DOUBLE_EQ(controller.solver().problem().datacenters[0].grid_price,
                   55.0);

  // The converged tick solved the UPDATED problem: a cold solve of the same
  // mutation agrees on the objective.
  UfcProblem mutated = make_tiny_problem();
  mutated.datacenters[0].grid_price = 55.0;
  admm::AdmgOptions cold;
  cold.record_trace = false;
  const admm::AdmgReport reference = admm::solve_admg(mutated, cold);
  ASSERT_TRUE(reference.converged);
  EXPECT_NEAR(tick.report.breakdown.ufc, reference.breakdown.ufc,
              1e-3 * std::abs(reference.breakdown.ufc));
}

TEST(Controller, RecordMetricsExportsLifetimeTotals) {
  ControllerOptions options = never_converge_options(4);
  Controller controller(make_tiny_problem(), options);
  const admm::ProblemUpdate no_change;
  controller.tick(no_change);
  controller.tick(no_change);
  controller.tick(no_change);

  obs::MetricsRegistry registry;
  controller.record_metrics(registry, "ctrl.tenant.alpha");

  const obs::Counter* ticks = registry.find_counter("ctrl.tenant.alpha.ticks");
  ASSERT_NE(ticks, nullptr);
  EXPECT_EQ(ticks->value(), 3u);
  const obs::Counter* iterations =
      registry.find_counter("ctrl.tenant.alpha.iterations");
  ASSERT_NE(iterations, nullptr);
  EXPECT_EQ(iterations->value(), 12u);
  const obs::Counter* exhausted =
      registry.find_counter("ctrl.tenant.alpha.budget_exhausted");
  ASSERT_NE(exhausted, nullptr);
  EXPECT_EQ(exhausted->value(), 3u);
  const obs::Counter* converged =
      registry.find_counter("ctrl.tenant.alpha.converged_ticks");
  ASSERT_NE(converged, nullptr);
  EXPECT_EQ(converged->value(), 0u);
  const obs::Histogram* histogram =
      registry.find_histogram("ctrl.tenant.alpha.tick_iterations");
  ASSERT_NE(histogram, nullptr);
  EXPECT_EQ(histogram->count(), 3u);
  EXPECT_DOUBLE_EQ(histogram->sum(), 12.0);
}

}  // namespace
}  // namespace ufc::ctrl
