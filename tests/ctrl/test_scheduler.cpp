// MultiTenantScheduler: fair multiplexing of independent warm-started
// tenants over one iteration pool and one thread pool.
//
// The load-bearing property is thread-count bit-identity: grants are decided
// serially, tenant solves touch disjoint state, and accounting replays in
// grant order, so --threads is purely a wall-clock knob. The composition
// test closes the loop with the controller layer: one tenant under the
// scheduler IS a Controller whose budget is the pool, because budgeted
// solves chain bit-identically (AdmgBudget.ResumeBitIdenticalToOneLongSolve).
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "admm/admg.hpp"
#include "ctrl/controller.hpp"
#include "ctrl/scheduler.hpp"
#include "ctrl/stream.hpp"
#include "helpers.hpp"
#include "obs/metrics.hpp"
#include "util/contract.hpp"

namespace ufc::ctrl {
namespace {

using ::ufc::testing::make_tiny_problem;

std::unique_ptr<SyntheticTickSource> tiny_stream(std::uint64_t seed,
                                                 int ticks) {
  SyntheticTickSource::Options options;
  options.seed = seed;
  options.ticks = ticks;
  options.workload_amplitude = 0.1;
  options.price_amplitude = 0.2;
  return std::make_unique<SyntheticTickSource>(make_tiny_problem(), options);
}

SchedulerOptions small_options(int threads) {
  SchedulerOptions options;
  options.iteration_pool_per_tick = 60;
  options.quantum = 10;
  options.threads = threads;
  options.admg.record_trace = false;
  return options;
}

// The scheduler owns a thread pool and is therefore not movable; tests
// construct it in place and load the standard three tenants through this.
void load_three_tenants(MultiTenantScheduler& scheduler, int ticks) {
  scheduler.add_tenant("alpha", tiny_stream(1, ticks));
  scheduler.add_tenant("beta", tiny_stream(2, ticks));
  scheduler.add_tenant("gamma", tiny_stream(3, ticks));
}

TEST(MultiTenant, RejectsBadConfigurationsAndNames) {
  SchedulerOptions bad = small_options(1);
  bad.iteration_pool_per_tick = 0;
  EXPECT_THROW(MultiTenantScheduler{bad}, ContractViolation);
  bad = small_options(1);
  bad.quantum = 0;
  EXPECT_THROW(MultiTenantScheduler{bad}, ContractViolation);

  MultiTenantScheduler scheduler(small_options(1));
  EXPECT_THROW(scheduler.add_tenant("", tiny_stream(1, 2)),
               ContractViolation);
  EXPECT_THROW(scheduler.add_tenant("alpha", nullptr), ContractViolation);
  scheduler.add_tenant("alpha", tiny_stream(1, 2));
  EXPECT_THROW(scheduler.add_tenant("alpha", tiny_stream(2, 2)),
               ContractViolation);
  EXPECT_EQ(scheduler.tenant_count(), 1u);
  EXPECT_EQ(scheduler.tenant_name(0), "alpha");
  // Ticking with no tenants at all is a contract violation, not a no-op.
  MultiTenantScheduler empty(small_options(1));
  EXPECT_THROW(empty.run_tick(), ContractViolation);
}

TEST(MultiTenant, ThreadCountIsBitIdentical) {
  constexpr int kTicks = 5;
  MultiTenantScheduler serial(small_options(1));
  MultiTenantScheduler threaded(small_options(4));
  load_three_tenants(serial, kTicks);
  load_three_tenants(threaded, kTicks);

  EXPECT_EQ(serial.run(kTicks), kTicks);
  EXPECT_EQ(threaded.run(kTicks), kTicks);

  for (std::size_t t = 0; t < serial.tenant_count(); ++t) {
    EXPECT_EQ(serial.tenant_solver(t).checkpoint(),
              threaded.tenant_solver(t).checkpoint())
        << "tenant " << serial.tenant_name(t);
  }

  obs::MetricsRegistry serial_metrics;
  obs::MetricsRegistry threaded_metrics;
  serial.record_metrics(serial_metrics);
  threaded.record_metrics(threaded_metrics);
  EXPECT_EQ(serial_metrics.to_json().dump(),
            threaded_metrics.to_json().dump());
}

TEST(MultiTenant, SingleTenantEqualsStandaloneController) {
  constexpr int kTicks = 4;
  constexpr int kPool = 40;

  SchedulerOptions options = small_options(1);
  options.iteration_pool_per_tick = kPool;
  options.quantum = 10;  // Four grants per tick chain into one 40-budget.
  // A tolerance below reach keeps the tenant from converging mid-tick, so
  // it consumes every grant and the chaining identity applies exactly.
  options.admg.tolerance = 1e-12;
  options.admg.warn_on_unconverged = false;
  MultiTenantScheduler scheduler(options);
  scheduler.add_tenant("solo", tiny_stream(9, kTicks));
  EXPECT_EQ(scheduler.run(kTicks), kTicks);

  ControllerOptions controller_options;
  controller_options.max_iters_per_tick = kPool;
  controller_options.admg = options.admg;
  auto stream = tiny_stream(9, kTicks);
  Controller controller(stream->base_problem(), controller_options);
  while (const auto update = stream->next()) controller.tick(*update);

  EXPECT_EQ(scheduler.tenant_solver(0).checkpoint(),
            controller.solver().checkpoint());
}

TEST(MultiTenant, EarlyConvergenceHandsUnusedGrantBack) {
  // A generous pool lets every tenant converge each tick; the reclaimed
  // iterations surface as iterations_saved and the consumed totals stay
  // well under the pool.
  constexpr int kTicks = 3;
  SchedulerOptions options = small_options(1);
  options.iteration_pool_per_tick = 2000;
  options.quantum = 500;
  MultiTenantScheduler scheduler(options);
  scheduler.add_tenant("alpha", tiny_stream(4, kTicks));
  scheduler.add_tenant("beta", tiny_stream(5, kTicks));
  EXPECT_EQ(scheduler.run(kTicks), kTicks);

  obs::MetricsRegistry registry;
  scheduler.record_metrics(registry);
  const auto count = [&](const std::string& name) {
    const obs::Counter* counter = registry.find_counter(name);
    return counter != nullptr ? counter->value() : 0u;
  };
  EXPECT_EQ(count("ctrl.ticks"), static_cast<std::uint64_t>(kTicks));
  for (const std::string name : {"alpha", "beta"}) {
    const std::string prefix = "ctrl.tenant." + name;
    EXPECT_EQ(count(prefix + ".ticks"), static_cast<std::uint64_t>(kTicks));
    EXPECT_EQ(count(prefix + ".converged_ticks"),
              static_cast<std::uint64_t>(kTicks));
    EXPECT_EQ(count(prefix + ".budget_exhausted"), 0u);
    EXPECT_GT(count(prefix + ".iterations_saved"), 0u);
    EXPECT_GT(count(prefix + ".iterations"), 0u);
    const obs::Histogram* histogram =
        registry.find_histogram(prefix + ".tick_iterations");
    ASSERT_NE(histogram, nullptr);
    EXPECT_EQ(histogram->count(), static_cast<std::uint64_t>(kTicks));
  }
  for (std::size_t t = 0; t < scheduler.tenant_count(); ++t)
    EXPECT_TRUE(scheduler.tenant_solver(t).is_converged());
}

TEST(MultiTenant, PoolConsumptionNeverExceedsTheBudget) {
  constexpr int kTicks = 4;
  MultiTenantScheduler scheduler(small_options(1));
  load_three_tenants(scheduler, kTicks);
  EXPECT_EQ(scheduler.run(kTicks), kTicks);

  obs::MetricsRegistry registry;
  scheduler.record_metrics(registry);
  std::uint64_t total_iterations = 0;
  for (const std::string name : {"alpha", "beta", "gamma"}) {
    const obs::Counter* counter =
        registry.find_counter("ctrl.tenant." + name + ".iterations");
    ASSERT_NE(counter, nullptr);
    total_iterations += counter->value();
  }
  EXPECT_LE(total_iterations, static_cast<std::uint64_t>(
                                  kTicks * small_options(1)
                                               .iteration_pool_per_tick));
}

TEST(MultiTenant, ExhaustedStreamsEndTheRun) {
  MultiTenantScheduler scheduler(small_options(1));
  scheduler.add_tenant("short", tiny_stream(6, 2));
  scheduler.add_tenant("long", tiny_stream(7, 4));

  // run() stops once every stream is dry: 4 ticks happen (the longer
  // stream), not the requested 10.
  EXPECT_EQ(scheduler.run(10), 4);
  EXPECT_EQ(scheduler.ticks(), 4);
  EXPECT_FALSE(scheduler.run_tick());

  obs::MetricsRegistry registry;
  scheduler.record_metrics(registry);
  const obs::Counter* short_ticks =
      registry.find_counter("ctrl.tenant.short.ticks");
  const obs::Counter* long_ticks =
      registry.find_counter("ctrl.tenant.long.ticks");
  ASSERT_NE(short_ticks, nullptr);
  ASSERT_NE(long_ticks, nullptr);
  EXPECT_EQ(short_ticks->value(), 2u);
  EXPECT_EQ(long_ticks->value(), 4u);
}

}  // namespace
}  // namespace ufc::ctrl
