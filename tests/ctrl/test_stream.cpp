// Tick-stream ingestion: deterministic replay, bounded synthetic jitter and
// the hardened CSV trust boundary.
//
// The replay tests drive the stream the way the controller does — apply
// each sparse update to a running copy of the base problem — and check the
// result against the scenario's per-hour problems (outages included), so a
// dropped or duplicated delta cannot hide. The CSV tests enumerate the
// malformed-telemetry cases the parser must reject: NaN/Inf and negative
// values, short and long rows, unknown kinds, out-of-range indices and
// decreasing ticks all throw rather than clamp.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "admm/admg.hpp"
#include "admm/engine.hpp"
#include "ctrl/stream.hpp"
#include "helpers.hpp"
#include "sim/session.hpp"
#include "sim/simulator.hpp"
#include "traces/scenario.hpp"
#include "util/contract.hpp"

namespace ufc::ctrl {
namespace {

using ::ufc::testing::make_tiny_problem;

/// Replays a sparse update onto a caller-unit problem copy — the reference
/// consumer the stream contract is checked against.
void apply_to(UfcProblem& problem, const admm::ProblemUpdate& update) {
  for (const auto& [i, value] : update.arrivals) problem.arrivals[i] = value;
  for (const auto& [j, value] : update.grid_prices)
    problem.datacenters[j].grid_price = value;
  for (const auto& [j, value] : update.carbon_rates)
    problem.datacenters[j].carbon_rate = value;
  for (const auto& [j, value] : update.fuel_cell_caps)
    problem.datacenters[j].fuel_cell_capacity_mw = value;
}

traces::ScenarioConfig small_config() {
  traces::ScenarioConfig config;
  config.hours = 8;
  config.front_ends = 4;
  return config;
}

TEST(TickStream, ScenarioReplayReconstructsEveryHour) {
  const auto scenario = traces::Scenario::generate(small_config());
  ScenarioTickSource source(scenario);
  EXPECT_DOUBLE_EQ(source.base_problem().arrivals[0],
                   scenario.problem_at(0).arrivals[0]);

  UfcProblem replayed = source.base_problem();
  for (int hour = 1; hour < scenario.hours(); ++hour) {
    const std::optional<admm::ProblemUpdate> update = source.next();
    ASSERT_TRUE(update.has_value()) << "hour " << hour;
    apply_to(replayed, *update);

    const UfcProblem expected = scenario.problem_at(hour);
    for (std::size_t i = 0; i < expected.num_front_ends(); ++i)
      EXPECT_DOUBLE_EQ(replayed.arrivals[i], expected.arrivals[i]);
    for (std::size_t j = 0; j < expected.num_datacenters(); ++j) {
      EXPECT_DOUBLE_EQ(replayed.datacenters[j].grid_price,
                       expected.datacenters[j].grid_price);
      EXPECT_DOUBLE_EQ(replayed.datacenters[j].carbon_rate,
                       expected.datacenters[j].carbon_rate);
      EXPECT_DOUBLE_EQ(replayed.datacenters[j].fuel_cell_capacity_mw,
                       expected.datacenters[j].fuel_cell_capacity_mw);
    }
  }
  EXPECT_FALSE(source.next().has_value());
  EXPECT_FALSE(source.next().has_value());  // Stays exhausted.
}

TEST(TickStream, ScenarioReplayCarriesOutageCapacityTransitions) {
  const auto scenario = traces::Scenario::generate(small_config());
  const std::vector<sim::FuelCellOutage> outages = {{0, 2, 5}};
  ScenarioTickSource source(scenario, outages);

  UfcProblem replayed = source.base_problem();
  // Hour 0 is outside the window: full capacity in the base problem.
  EXPECT_DOUBLE_EQ(replayed.datacenters[0].fuel_cell_capacity_mw,
                   scenario.problem_at(0).datacenters[0].fuel_cell_capacity_mw);

  for (int hour = 1; hour < scenario.hours(); ++hour) {
    const std::optional<admm::ProblemUpdate> update = source.next();
    ASSERT_TRUE(update.has_value());
    apply_to(replayed, *update);

    UfcProblem expected = scenario.problem_at(hour);
    sim::apply_outages(expected, outages, hour);
    EXPECT_DOUBLE_EQ(replayed.datacenters[0].fuel_cell_capacity_mw,
                     expected.datacenters[0].fuel_cell_capacity_mw)
        << "hour " << hour;
  }
}

TEST(TickStream, SyntheticStreamIsDeterministicInSeed) {
  SyntheticTickSource::Options options;
  options.seed = 7;
  options.ticks = 5;
  options.carbon_amplitude = 0.1;
  SyntheticTickSource a(make_tiny_problem(), options);
  SyntheticTickSource b(make_tiny_problem(), options);

  bool any_difference_from_other_seed = false;
  options.seed = 8;
  SyntheticTickSource c(make_tiny_problem(), options);
  for (int tick = 0; tick < options.ticks; ++tick) {
    const auto ua = a.next();
    const auto ub = b.next();
    const auto uc = c.next();
    ASSERT_TRUE(ua.has_value() && ub.has_value() && uc.has_value());
    ASSERT_EQ(ua->arrivals.size(), ub->arrivals.size());
    for (std::size_t k = 0; k < ua->arrivals.size(); ++k) {
      EXPECT_EQ(ua->arrivals[k], ub->arrivals[k]);
      if (ua->arrivals[k].second != uc->arrivals[k].second)
        any_difference_from_other_seed = true;
    }
    ASSERT_EQ(ua->grid_prices.size(), ub->grid_prices.size());
    for (std::size_t k = 0; k < ua->grid_prices.size(); ++k)
      EXPECT_EQ(ua->grid_prices[k], ub->grid_prices[k]);
    ASSERT_EQ(ua->carbon_rates.size(), ub->carbon_rates.size());
    for (std::size_t k = 0; k < ua->carbon_rates.size(); ++k)
      EXPECT_EQ(ua->carbon_rates[k], ub->carbon_rates[k]);
  }
  EXPECT_FALSE(a.next().has_value());
  EXPECT_TRUE(any_difference_from_other_seed);
}

TEST(TickStream, SyntheticJitterStaysWithinAmplitudeOfBase) {
  const UfcProblem base = make_tiny_problem();
  SyntheticTickSource::Options options;
  options.ticks = 32;
  options.workload_amplitude = 0.2;
  options.price_amplitude = 0.3;
  SyntheticTickSource source(base, options);

  while (const auto update = source.next()) {
    double total = 0.0;
    for (const auto& [i, value] : update->arrivals) {
      // Every tick jitters around the BASE, not the previous tick, so
      // excursions never compound.
      EXPECT_GE(value, base.arrivals[i] * (1.0 - options.workload_amplitude));
      EXPECT_LE(value, base.arrivals[i] * (1.0 + options.workload_amplitude));
      total += value;
    }
    EXPECT_LE(total, base.total_server_capacity());
    for (const auto& [j, value] : update->grid_prices) {
      const double price = base.datacenters[j].grid_price;
      EXPECT_GE(value, price * (1.0 - options.price_amplitude));
      EXPECT_LE(value, price * (1.0 + options.price_amplitude));
    }
    // Carbon amplitude is zero: the group must be omitted, not emitted flat.
    EXPECT_TRUE(update->carbon_rates.empty());
  }
}

TEST(TickStream, SyntheticConstructorRejectsInfeasibleConfigurations) {
  SyntheticTickSource::Options options;
  options.workload_amplitude = -0.1;
  EXPECT_THROW(SyntheticTickSource(make_tiny_problem(), options),
               ContractViolation);
  options.workload_amplitude = 1.0;  // Amplitudes live in [0, 1).
  EXPECT_THROW(SyntheticTickSource(make_tiny_problem(), options),
               ContractViolation);
  // Worst-case excursion overflows capacity: arrivals 1000 against 1800
  // servers tolerates at most +80%.
  options.workload_amplitude = 0.9;
  EXPECT_THROW(SyntheticTickSource(make_tiny_problem(), options),
               ContractViolation);
  options.workload_amplitude = 0.5;
  EXPECT_NO_THROW(SyntheticTickSource(make_tiny_problem(), options));
}

std::vector<admm::ProblemUpdate> parse(const std::string& text) {
  std::istringstream in(text);
  return read_tick_stream(in, /*front_ends=*/2, /*datacenters=*/2);
}

TEST(TickStream, CsvParsesSortedRowsAndFillsGapsWithEmptyTicks) {
  const auto updates = parse(
      "tick,kind,index,value\n"
      "0,arrival,0,512.5\n"
      "0,grid_price,1,47.25\n"
      "2,fuel_cell_cap,0,0.125\n"
      "2,carbon_rate,1,310\n"
      "\n");
  ASSERT_EQ(updates.size(), 3u);
  ASSERT_EQ(updates[0].arrivals.size(), 1u);
  EXPECT_EQ(updates[0].arrivals[0].first, 0u);
  EXPECT_DOUBLE_EQ(updates[0].arrivals[0].second, 512.5);
  ASSERT_EQ(updates[0].grid_prices.size(), 1u);
  EXPECT_DOUBLE_EQ(updates[0].grid_prices[0].second, 47.25);
  EXPECT_TRUE(updates[1].empty());  // The gap becomes an empty tick.
  ASSERT_EQ(updates[2].fuel_cell_caps.size(), 1u);
  EXPECT_DOUBLE_EQ(updates[2].fuel_cell_caps[0].second, 0.125);
  ASSERT_EQ(updates[2].carbon_rates.size(), 1u);
  EXPECT_DOUBLE_EQ(updates[2].carbon_rates[0].second, 310.0);
}

TEST(TickStream, CsvToleratesWindowsLineEndings) {
  const auto updates = parse(
      "tick,kind,index,value\r\n"
      "0,arrival,1,400\r\n");
  ASSERT_EQ(updates.size(), 1u);
  EXPECT_DOUBLE_EQ(updates[0].arrivals[0].second, 400.0);
}

TEST(TickStream, CsvRejectsMalformedInput) {
  const std::string header = "tick,kind,index,value\n";
  // NaN and Inf parse cleanly through from_chars, so the explicit finiteness
  // gate is what rejects them.
  EXPECT_THROW(parse(header + "0,arrival,0,nan\n"), ContractViolation);
  EXPECT_THROW(parse(header + "0,arrival,0,inf\n"), ContractViolation);
  EXPECT_THROW(parse(header + "0,grid_price,0,-5\n"), ContractViolation);
  EXPECT_THROW(parse(header + "0,arrival,0\n"), ContractViolation);  // Short.
  EXPECT_THROW(parse(header + "0,arrival,0,1,extra\n"), ContractViolation);
  EXPECT_THROW(parse(header + "0,voltage,0,1\n"), ContractViolation);
  EXPECT_THROW(parse(header + "0,arrival,2,1\n"), ContractViolation);
  EXPECT_THROW(parse(header + "0,grid_price,2,1\n"), ContractViolation);
  EXPECT_THROW(parse(header + "0,arrival,-1,1\n"), ContractViolation);
  EXPECT_THROW(parse(header + "x,arrival,0,1\n"), ContractViolation);
  EXPECT_THROW(parse(header + "0,arrival,0,12abc\n"), ContractViolation);
  // Decreasing ticks: the stream contract is sorted input.
  EXPECT_THROW(parse(header + "3,arrival,0,1\n2,arrival,0,1\n"),
               ContractViolation);
  // Missing or wrong header.
  EXPECT_THROW(parse(""), ContractViolation);
  EXPECT_THROW(parse("time,kind,index,value\n"), ContractViolation);
}

TEST(TickStream, CsvFileHelperRejectsMissingFile) {
  EXPECT_THROW(
      read_tick_stream_file("/nonexistent/ufc_tick_stream.csv", 2, 2),
      ContractViolation);
}

TEST(TickStream, CsvUpdatesFeedApplyUpdateEndToEnd) {
  const auto updates = parse(
      "tick,kind,index,value\n"
      "0,arrival,0,700\n"
      "1,grid_price,0,55\n");
  admm::AdmgSolver solver(make_tiny_problem());
  for (const auto& update : updates) solver.apply_update(update);
  EXPECT_DOUBLE_EQ(solver.problem().datacenters[0].grid_price, 55.0);
  EXPECT_DOUBLE_EQ(solver.problem().arrivals[0] * solver.workload_scale(),
                   700.0);
}

}  // namespace
}  // namespace ufc::ctrl
