#include <gtest/gtest.h>

#include "traces/workload.hpp"
#include "util/contract.hpp"
#include "util/stats.hpp"

namespace ufc::traces {
namespace {

TEST(Workload, DeterministicForSeed) {
  Rng a(5), b(5);
  const auto ta = generate_workload({}, kWeekHours, a);
  const auto tb = generate_workload({}, kWeekHours, b);
  ASSERT_EQ(ta.size(), tb.size());
  for (std::size_t t = 0; t < ta.size(); ++t) EXPECT_DOUBLE_EQ(ta[t], tb[t]);
}

TEST(Workload, ValuesInUnitRange) {
  Rng rng(7);
  const auto trace = generate_workload({}, kWeekHours, rng);
  ASSERT_EQ(trace.size(), 168u);
  for (double v : trace) {
    EXPECT_GT(v, 0.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(Workload, ShowsDiurnalPattern) {
  Rng rng(11);
  WorkloadModelParams params;
  params.noise_sd = 0.0;
  params.burst_probability = 0.0;
  const auto trace = generate_workload(params, kWeekHours, rng);
  // Weekday 3pm (peak hour) must exceed weekday 3am by a clear margin.
  const double peak = trace[24 + 15];   // Tuesday 15:00
  const double trough = trace[24 + 3];  // Tuesday 03:00
  EXPECT_GT(peak, 1.8 * trough);
}

TEST(Workload, WeekendEffect) {
  Rng rng(13);
  WorkloadModelParams params;
  params.noise_sd = 0.0;
  params.burst_probability = 0.0;
  params.weekend_factor = 0.5;
  const auto trace = generate_workload(params, kWeekHours, rng);
  // Saturday noon vs Wednesday noon.
  EXPECT_LT(trace[5 * 24 + 12], 0.6 * trace[2 * 24 + 12]);
}

TEST(Workload, InvalidParamsThrow) {
  Rng rng(1);
  WorkloadModelParams bad;
  bad.base_level = 0.6;
  bad.diurnal_amplitude = 0.6;  // sum > 1
  EXPECT_THROW(generate_workload(bad, 24, rng), ContractViolation);
  EXPECT_THROW(generate_workload({}, 0, rng), ContractViolation);
}

TEST(ScaleToServers, PeakHitsTarget) {
  const std::vector<double> normalized = {0.2, 0.5, 1.0, 0.4};
  const auto scaled = scale_to_servers(normalized, 80000.0, 0.8);
  EXPECT_DOUBLE_EQ(max_value(scaled), 64000.0);
  EXPECT_DOUBLE_EQ(scaled[0], 12800.0);
}

TEST(ScaleToServers, InvalidInputsThrow) {
  EXPECT_THROW(scale_to_servers({}, 100.0, 0.5), ContractViolation);
  EXPECT_THROW(scale_to_servers({0.5}, 100.0, 0.0), ContractViolation);
  EXPECT_THROW(scale_to_servers({0.5}, 100.0, 1.5), ContractViolation);
}

TEST(SplitWorkload, RowsSumToTotals) {
  Rng rng(17);
  const std::vector<double> total = {100.0, 250.0, 80.0};
  const Mat split = split_workload(total, 10, rng);
  ASSERT_EQ(split.rows(), 3u);
  ASSERT_EQ(split.cols(), 10u);
  for (std::size_t t = 0; t < 3; ++t)
    EXPECT_NEAR(split.row_sum(t), total[t], 1e-9);
  for (double v : split.raw()) EXPECT_GE(v, 0.0);
}

TEST(SplitWorkload, SharesArePersistentAcrossSlots) {
  Rng rng(19);
  const std::vector<double> total(50, 100.0);
  const Mat split = split_workload(total, 5, rng, 0.35, 0.0);  // no jitter
  // Without jitter each front-end's share is constant over time.
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t t = 1; t < 50; ++t)
      EXPECT_NEAR(split(t, i), split(0, i), 1e-9);
}

TEST(PowerDemand, MeanIsCalibrated) {
  Rng rng(23);
  DemandModelParams params;
  params.mean_mw = 2.08;
  const auto demand = generate_power_demand_mw(params, kWeekHours, rng);
  EXPECT_NEAR(mean(demand), 2.08, 1e-9);
  for (double d : demand) EXPECT_GT(d, 0.0);
}

TEST(PowerDemand, DiurnalSwing) {
  Rng rng(29);
  DemandModelParams params;
  params.noise_sd = 0.0;
  const auto demand = generate_power_demand_mw(params, kWeekHours, rng);
  EXPECT_GT(demand[24 + 16], 1.5 * demand[24 + 4]);
}

}  // namespace
}  // namespace ufc::traces
