#include <gtest/gtest.h>

#include "traces/geography.hpp"
#include "util/contract.hpp"

namespace ufc::traces {
namespace {

TEST(Haversine, ZeroDistanceToSelf) {
  const GeoPoint p{"x", 40.0, -75.0};
  EXPECT_NEAR(haversine_km(p, p), 0.0, 1e-9);
}

TEST(Haversine, KnownCityPairs) {
  // Published great-circle distances (tolerance ~1%).
  const GeoPoint sf{"San Francisco", 37.7749, -122.4194};
  const GeoPoint ny{"New York", 40.7128, -74.0060};
  EXPECT_NEAR(haversine_km(sf, ny), 4130.0, 45.0);

  const GeoPoint dallas{"Dallas", 32.777, -96.797};
  const GeoPoint houston{"Houston", 29.760, -95.370};
  EXPECT_NEAR(haversine_km(dallas, houston), 362.0, 10.0);
}

TEST(Haversine, Symmetric) {
  const GeoPoint a{"a", 51.0, -114.0};
  const GeoPoint b{"b", 25.0, -80.0};
  EXPECT_DOUBLE_EQ(haversine_km(a, b), haversine_km(b, a));
}

TEST(PropagationLatency, PaperLaw) {
  // 0.02 ms per km -> 1000 km = 20 ms = 0.020 s.
  EXPECT_NEAR(propagation_latency_s(1000.0), 0.020, 1e-12);
  EXPECT_DOUBLE_EQ(propagation_latency_s(0.0), 0.0);
  EXPECT_THROW(propagation_latency_s(-1.0), ContractViolation);
}

TEST(Sites, PaperConfiguration) {
  const auto dcs = datacenter_sites();
  ASSERT_EQ(dcs.size(), 4u);
  EXPECT_EQ(dcs[0].name, "Calgary");
  EXPECT_EQ(dcs[1].name, "San Jose");
  EXPECT_EQ(dcs[2].name, "Dallas");
  EXPECT_EQ(dcs[3].name, "Pittsburgh");
  EXPECT_EQ(front_end_sites().size(), 10u);
}

TEST(LatencyMatrix, ShapeAndPlausibleRange) {
  const auto latency = latency_matrix_s(front_end_sites(), datacenter_sites());
  EXPECT_EQ(latency.rows(), 10u);
  EXPECT_EQ(latency.cols(), 4u);
  for (double l : latency.raw()) {
    EXPECT_GT(l, 0.0);
    EXPECT_LT(l, 0.1);  // under 100 ms across the continent
  }
}

TEST(LatencyMatrix, NearestDatacenterMakesSense) {
  const auto fes = front_end_sites();
  const auto dcs = datacenter_sites();
  const auto latency = latency_matrix_s(fes, dcs);
  // Los Angeles (row 1) is nearest to San Jose (col 1).
  std::size_t best = 0;
  for (std::size_t j = 1; j < 4; ++j)
    if (latency(1, j) < latency(1, best)) best = j;
  EXPECT_EQ(best, 1u);
  // New York (row 8) is nearest to Pittsburgh (col 3).
  best = 0;
  for (std::size_t j = 1; j < 4; ++j)
    if (latency(8, j) < latency(8, best)) best = j;
  EXPECT_EQ(best, 3u);
}

}  // namespace
}  // namespace ufc::traces
