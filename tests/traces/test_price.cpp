#include <gtest/gtest.h>

#include "traces/price.hpp"
#include "util/contract.hpp"
#include "util/stats.hpp"

namespace ufc::traces {
namespace {

TEST(Prices, DeterministicForSeed) {
  Rng a(3), b(3);
  const auto pa = generate_prices(dallas_prices(), 168, a);
  const auto pb = generate_prices(dallas_prices(), 168, b);
  for (std::size_t t = 0; t < pa.size(); ++t) EXPECT_DOUBLE_EQ(pa[t], pb[t]);
}

TEST(Prices, RespectsFloor) {
  Rng rng(5);
  PriceModelParams params = dallas_prices();
  params.floor = 7.5;
  params.noise_sd = 0.6;  // wild noise to stress the floor
  const auto prices = generate_prices(params, 500, rng);
  for (double p : prices) EXPECT_GE(p, 7.5);
}

TEST(Prices, DiurnalPeakVisibleWithoutNoise) {
  Rng rng(7);
  PriceModelParams params = san_jose_prices();
  params.noise_sd = 0.0;
  const auto prices = generate_prices(params, 168, rng);
  EXPECT_GT(prices[24 + 17], 1.5 * prices[24 + 4]);
}

TEST(Prices, PeakSharpnessNarrowsExpensiveWindow) {
  Rng rng(9);
  PriceModelParams broad = san_jose_prices();
  broad.noise_sd = 0.0;
  broad.peak_sharpness = 1.0;
  PriceModelParams sharp = broad;
  sharp.peak_sharpness = 4.0;
  Rng rng2 = rng;
  const auto pb = generate_prices(broad, 24, rng);
  const auto ps = generate_prices(sharp, 24, rng2);
  // Same height at the exact peak hour, lower on the shoulders.
  EXPECT_NEAR(pb[17], ps[17], 1e-6);
  EXPECT_GT(pb[11], ps[11]);
}

TEST(Prices, SpikesRaiseTheMaximum) {
  PriceModelParams no_spikes = dallas_prices();
  no_spikes.spike_probability = 0.0;
  PriceModelParams spikes = dallas_prices();
  spikes.spike_probability = 0.2;
  Rng a(11), b(11);
  const auto quiet = generate_prices(no_spikes, 500, a);
  const auto spiky = generate_prices(spikes, 500, b);
  EXPECT_GT(max_value(spiky), max_value(quiet) + 50.0);
}

TEST(Prices, RegionalCalibration) {
  // The spatial diversity the paper's Table I implies: Dallas cheap,
  // San Jose expensive, the others in between.
  Rng rng(42);
  const auto models = datacenter_price_models();
  ASSERT_EQ(models.size(), 4u);
  std::vector<double> means;
  for (std::size_t j = 0; j < 4; ++j) {
    Rng r = rng.fork(j);
    means.push_back(mean(generate_prices(models[j], 168, r)));
  }
  const double calgary = means[0], san_jose = means[1], dallas = means[2],
               pittsburgh = means[3];
  EXPECT_LT(dallas, 40.0);
  EXPECT_GT(san_jose, 65.0);
  EXPECT_GT(san_jose, 1.7 * dallas);
  EXPECT_GT(calgary, dallas);
  EXPECT_LT(calgary, san_jose);
  EXPECT_GT(pittsburgh, dallas);
  EXPECT_LT(pittsburgh, san_jose);
}

TEST(Prices, InvalidParamsThrow) {
  Rng rng(1);
  PriceModelParams bad = dallas_prices();
  bad.base = 0.0;
  EXPECT_THROW(generate_prices(bad, 24, rng), ContractViolation);
  PriceModelParams sharp = dallas_prices();
  sharp.peak_sharpness = 0.5;
  EXPECT_THROW(generate_prices(sharp, 24, rng), ContractViolation);
  EXPECT_THROW(generate_prices(dallas_prices(), 0, rng), ContractViolation);
}

}  // namespace
}  // namespace ufc::traces
