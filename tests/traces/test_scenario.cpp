#include <gtest/gtest.h>

#include "traces/scenario.hpp"
#include "util/contract.hpp"
#include "util/stats.hpp"

namespace ufc::traces {
namespace {

TEST(Scenario, GeneratesPaperConfiguration) {
  const auto scenario = Scenario::generate({});
  EXPECT_EQ(scenario.hours(), 168);
  EXPECT_EQ(scenario.num_front_ends(), 10u);
  EXPECT_EQ(scenario.num_datacenters(), 4u);
  EXPECT_EQ(scenario.datacenter_names()[2], "Dallas");
  for (double s : scenario.servers()) {
    EXPECT_GE(s, 1.7e4);
    EXPECT_LE(s, 2.3e4);
  }
}

TEST(Scenario, DeterministicForSeed) {
  const auto a = Scenario::generate({});
  const auto b = Scenario::generate({});
  EXPECT_LT(max_abs_diff(a.arrivals(), b.arrivals()), 1e-12);
  EXPECT_LT(max_abs_diff(a.prices(), b.prices()), 1e-12);
  EXPECT_LT(max_abs_diff(a.carbon_rates(), b.carbon_rates()), 1e-12);
}

TEST(Scenario, DifferentSeedsDiffer) {
  ScenarioConfig other;
  other.seed = 123456;
  const auto a = Scenario::generate({});
  const auto b = Scenario::generate(other);
  EXPECT_GT(max_abs_diff(a.arrivals(), b.arrivals()), 1.0);
}

TEST(Scenario, PolicyKnobsDoNotPerturbTraces) {
  // Sweeps rely on this: changing p0 / tax must keep traces identical.
  ScenarioConfig cheap;
  cheap.fuel_cell_price = 20.0;
  cheap.carbon_tax = 140.0;
  const auto base = Scenario::generate({});
  const auto swept = Scenario::generate(cheap);
  EXPECT_LT(max_abs_diff(base.arrivals(), swept.arrivals()), 1e-12);
  EXPECT_LT(max_abs_diff(base.prices(), swept.prices()), 1e-12);
  EXPECT_LT(max_abs_diff(base.carbon_rates(), swept.carbon_rates()), 1e-12);
}

TEST(Scenario, ArrivalsRowsMatchTotals) {
  const auto scenario = Scenario::generate({});
  for (int t = 0; t < scenario.hours(); ++t)
    EXPECT_NEAR(scenario.arrivals().row_sum(static_cast<std::size_t>(t)),
                scenario.total_workload()[static_cast<std::size_t>(t)], 1e-6);
}

TEST(Scenario, WorkloadPeaksAtConfiguredFraction) {
  const auto scenario = Scenario::generate({});
  double capacity = 0.0;
  for (double s : scenario.servers()) capacity += s;
  EXPECT_NEAR(max_value(scenario.total_workload()), 0.8 * capacity,
              1e-6 * capacity);
}

TEST(Scenario, ProblemAtSlotIsValidAndMatchesTraces) {
  const auto scenario = Scenario::generate({});
  const auto problem = scenario.problem_at(100);
  EXPECT_NO_THROW(problem.validate());
  EXPECT_EQ(problem.num_datacenters(), 4u);
  EXPECT_EQ(problem.num_front_ends(), 10u);
  for (std::size_t j = 0; j < 4; ++j) {
    EXPECT_DOUBLE_EQ(problem.datacenters[j].grid_price,
                     scenario.prices()(100, j));
    EXPECT_DOUBLE_EQ(problem.datacenters[j].carbon_rate,
                     scenario.carbon_rates()(100, j));
    // Full fuel-cell capacity: P_peak * S_j * PUE.
    EXPECT_NEAR(problem.datacenters[j].fuel_cell_capacity_mw,
                200.0 * problem.datacenters[j].servers * 1.2 / 1e6, 1e-9);
  }
  for (std::size_t i = 0; i < 10; ++i)
    EXPECT_DOUBLE_EQ(problem.arrivals[i], scenario.arrivals()(100, i));
}

TEST(Scenario, ProblemAtOutOfRangeThrows) {
  const auto scenario = Scenario::generate({});
  EXPECT_THROW(scenario.problem_at(-1), ContractViolation);
  EXPECT_THROW(scenario.problem_at(168), ContractViolation);
}

TEST(Scenario, InvalidConfigThrows) {
  ScenarioConfig bad;
  bad.front_ends = 11;  // only 10 sites available
  EXPECT_THROW(Scenario::generate(bad), ContractViolation);
  ScenarioConfig zero;
  zero.hours = 0;
  EXPECT_THROW(Scenario::generate(zero), ContractViolation);
}

TEST(ScenarioFromData, BuildsSolvableScenarioFromExternalTraces) {
  // Round-trip: export a generated scenario's traces and rebuild from them.
  const auto original = Scenario::generate({});
  ExternalTraceData data;
  data.config = original.config();
  data.datacenter_names = original.datacenter_names();
  data.servers = original.servers();
  data.arrivals = original.arrivals();
  data.prices = original.prices();
  data.carbon_rates = original.carbon_rates();
  data.latency_s = original.latency_s();
  const auto rebuilt = Scenario::from_data(std::move(data));

  EXPECT_EQ(rebuilt.hours(), original.hours());
  EXPECT_EQ(rebuilt.num_front_ends(), original.num_front_ends());
  for (int t : {0, 100}) {
    const auto a = original.problem_at(t);
    const auto b = rebuilt.problem_at(t);
    EXPECT_DOUBLE_EQ(a.datacenters[1].grid_price, b.datacenters[1].grid_price);
    EXPECT_DOUBLE_EQ(a.arrivals[3], b.arrivals[3]);
    EXPECT_DOUBLE_EQ(a.datacenters[2].fuel_cell_capacity_mw,
                     b.datacenters[2].fuel_cell_capacity_mw);
  }
}

TEST(ScenarioFromData, ValidatesDimensions) {
  const auto original = Scenario::generate({});
  ExternalTraceData data;
  data.config = original.config();
  data.datacenter_names = original.datacenter_names();
  data.servers = original.servers();
  data.arrivals = original.arrivals();
  data.prices = Mat(10, 4);  // wrong hour count
  data.carbon_rates = original.carbon_rates();
  data.latency_s = original.latency_s();
  EXPECT_THROW(Scenario::from_data(std::move(data)), ContractViolation);
}

TEST(ScenarioFromData, RejectsNegativeValues) {
  const auto original = Scenario::generate({});
  ExternalTraceData data;
  data.config = original.config();
  data.datacenter_names = original.datacenter_names();
  data.servers = original.servers();
  data.arrivals = original.arrivals();
  data.prices = original.prices();
  data.prices(5, 1) = -10.0;
  data.carbon_rates = original.carbon_rates();
  data.latency_s = original.latency_s();
  EXPECT_THROW(Scenario::from_data(std::move(data)), ContractViolation);
}

TEST(ScenarioConfigFromIni, AppliesOverridesAndDefaults) {
  const auto config = Config::parse(
      "[scenario]\n"
      "seed = 7\n"
      "hours = 72\n"
      "fuel_cell_price = 55\n"
      "carbon_tax = 90\n");
  const auto scenario_config = scenario_config_from(config);
  EXPECT_EQ(scenario_config.seed, 7u);
  EXPECT_EQ(scenario_config.hours, 72);
  EXPECT_DOUBLE_EQ(scenario_config.fuel_cell_price, 55.0);
  EXPECT_DOUBLE_EQ(scenario_config.carbon_tax, 90.0);
  // Untouched keys keep the paper defaults.
  EXPECT_EQ(scenario_config.front_ends, 10);
  EXPECT_DOUBLE_EQ(scenario_config.pue, 1.2);
  EXPECT_DOUBLE_EQ(scenario_config.latency_weight, 10.0);
}

TEST(ScenarioConfigFromIni, EmptyConfigIsPaperSetup) {
  const auto scenario_config = scenario_config_from(Config::parse(""));
  const traces::ScenarioConfig defaults;
  EXPECT_EQ(scenario_config.seed, defaults.seed);
  EXPECT_EQ(scenario_config.hours, defaults.hours);
  EXPECT_DOUBLE_EQ(scenario_config.fuel_cell_price,
                   defaults.fuel_cell_price);
}

TEST(SingleSiteData, MatchesTableOneCalibration) {
  const auto data = generate_single_site_data(42);
  EXPECT_EQ(data.demand_mw.size(), 168u);
  EXPECT_NEAR(mean(data.demand_mw), 2.08, 0.01);
  EXPECT_LT(mean(data.dallas_price), 45.0);
  EXPECT_GT(mean(data.san_jose_price), 60.0);
}

}  // namespace
}  // namespace ufc::traces
