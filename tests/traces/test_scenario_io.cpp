#include <gtest/gtest.h>

#include <cstdio>

#include "math/matrix.hpp"
#include "model/breakdown.hpp"
#include "traces/scenario_io.hpp"

namespace ufc::traces {
namespace {

class ScenarioIoTest : public ::testing::Test {
 protected:
  // Each test gets its own file prefix: ctest runs the discovered cases as
  // separate processes in parallel, and a shared prefix lets one test's
  // TearDown delete CSVs another test is still reading.
  std::string prefix_ =
      ::testing::TempDir() + "ufc_scenario_io_" +
      ::testing::UnitTest::GetInstance()->current_test_info()->name();
  void TearDown() override {
    for (const auto& path : {prefix_ + "_workload.csv", prefix_ + "_prices.csv",
                             prefix_ + "_carbon.csv", prefix_ + "_sites.csv"})
      std::remove(path.c_str());
  }
};

TEST_F(ScenarioIoTest, RoundTripsTraces) {
  ScenarioConfig config;
  config.hours = 48;
  const auto original = Scenario::generate(config);
  const auto paths = save_scenario_csv(original, prefix_);
  const auto loaded = load_scenario_csv(paths, config);

  EXPECT_EQ(loaded.hours(), original.hours());
  EXPECT_EQ(loaded.num_front_ends(), original.num_front_ends());
  EXPECT_EQ(loaded.num_datacenters(), original.num_datacenters());
  EXPECT_LT(max_abs_diff(loaded.arrivals(), original.arrivals()), 1e-9);
  EXPECT_LT(max_abs_diff(loaded.prices(), original.prices()), 1e-9);
  EXPECT_LT(max_abs_diff(loaded.carbon_rates(), original.carbon_rates()),
            1e-9);
  EXPECT_LT(max_abs_diff(loaded.latency_s(), original.latency_s()), 1e-12);
  for (std::size_t j = 0; j < 4; ++j)
    EXPECT_NEAR(loaded.servers()[j], original.servers()[j], 1e-9);
}

TEST_F(ScenarioIoTest, LoadedScenarioProducesIdenticalProblems) {
  ScenarioConfig config;
  config.hours = 24;
  const auto original = Scenario::generate(config);
  const auto loaded =
      load_scenario_csv(save_scenario_csv(original, prefix_), config);
  const auto a = original.problem_at(13);
  const auto b = loaded.problem_at(13);
  EXPECT_NEAR(ufc_objective(a, Mat(10, 4, 0.0), Vec(4, 0.0)),
              ufc_objective(b, Mat(10, 4, 0.0), Vec(4, 0.0)), 1e-9);
  EXPECT_NEAR(a.datacenters[0].grid_price, b.datacenters[0].grid_price, 1e-9);
}

TEST_F(ScenarioIoTest, PathsHelper) {
  const auto paths = scenario_csv_paths("dir/run1");
  EXPECT_EQ(paths.workload, "dir/run1_workload.csv");
  EXPECT_EQ(paths.sites, "dir/run1_sites.csv");
}

TEST(ScenarioIoErrors, MissingFilesThrow) {
  ScenarioCsvPaths paths = scenario_csv_paths("/nonexistent/prefix");
  EXPECT_THROW(load_scenario_csv(paths, {}), std::runtime_error);
}

}  // namespace
}  // namespace ufc::traces
