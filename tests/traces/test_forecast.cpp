#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "traces/forecast.hpp"
#include "traces/workload.hpp"
#include "util/contract.hpp"
#include "util/rng.hpp"

namespace ufc::traces {
namespace {

std::vector<double> sine_series(int n, int period, double noise,
                                std::uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(static_cast<std::size_t>(n));
  for (int t = 0; t < n; ++t)
    out[static_cast<std::size_t>(t)] =
        10.0 + 3.0 * std::sin(2.0 * std::numbers::pi * t / period) +
        rng.normal(0.0, noise);
  return out;
}

TEST(SeasonalNaive, ExactOnPerfectlyPeriodicSeries) {
  const auto series = sine_series(96, 24, 0.0, 1);
  const auto forecast = seasonal_naive_forecast(series, 24);
  for (std::size_t t = 24; t < series.size(); ++t)
    EXPECT_NEAR(forecast[t], series[t], 1e-9);
}

TEST(SeasonalNaive, WarmupFallsBackToFirstValue) {
  const std::vector<double> series = {5.0, 6.0, 7.0, 8.0};
  const auto forecast = seasonal_naive_forecast(series, 3);
  EXPECT_DOUBLE_EQ(forecast[0], 5.0);
  EXPECT_DOUBLE_EQ(forecast[2], 5.0);
  EXPECT_DOUBLE_EQ(forecast[3], 5.0);  // series[0]
}

TEST(HoltWinters, TracksSeasonalSeriesWithTrend) {
  // Seasonal + slow linear growth: Holt-Winters should track it closely.
  std::vector<double> series(240);
  for (int t = 0; t < 240; ++t)
    series[static_cast<std::size_t>(t)] =
        50.0 + 0.05 * t + 8.0 * std::sin(2.0 * std::numbers::pi * t / 24.0);
  const auto forecast = holt_winters_forecast(series);
  EXPECT_LT(mape(series, forecast, 48), 0.02);
}

TEST(HoltWinters, BeatsSeasonalNaiveOnTrendingSeries) {
  std::vector<double> series(240);
  for (int t = 0; t < 240; ++t)
    series[static_cast<std::size_t>(t)] =
        20.0 + 0.2 * t + 5.0 * std::sin(2.0 * std::numbers::pi * t / 24.0);
  const auto hw = holt_winters_forecast(series);
  const auto naive = seasonal_naive_forecast(series, 24);
  EXPECT_LT(mape(series, hw, 48), mape(series, naive, 48));
}

TEST(HoltWinters, AccurateOnSyntheticWorkload) {
  // The claim the paper leans on: diurnal interactive workloads are
  // predictable. Our HP-like trace should be forecastable to a few percent.
  Rng rng(5);
  const auto trace = generate_workload({}, 168, rng);
  const auto forecast = holt_winters_forecast(trace);
  EXPECT_LT(mape(trace, forecast, 48), 0.12);
}

TEST(HoltWinters, RequiresTwoSeasons) {
  const std::vector<double> series(30, 1.0);
  HoltWintersParams params;
  params.period = 24;
  EXPECT_THROW(holt_winters_forecast(series, params), ContractViolation);
}

TEST(HoltWinters, RejectsBadSmoothingParameters) {
  const auto series = sine_series(96, 24, 0.0, 1);
  HoltWintersParams bad;
  bad.alpha = 0.0;
  EXPECT_THROW(holt_winters_forecast(series, bad), ContractViolation);
  bad = {};
  bad.gamma = 1.0;
  EXPECT_THROW(holt_winters_forecast(series, bad), ContractViolation);
}

TEST(ErrorMetrics, HandComputed) {
  const std::vector<double> actual = {10.0, 20.0};
  const std::vector<double> forecast = {11.0, 18.0};
  EXPECT_NEAR(mape(actual, forecast), 0.5 * (0.1 + 0.1), 1e-12);
  EXPECT_NEAR(rmse(actual, forecast), std::sqrt((1.0 + 4.0) / 2.0), 1e-12);
}

TEST(ErrorMetrics, SkipIgnoresWarmup) {
  const std::vector<double> actual = {10.0, 10.0, 10.0};
  const std::vector<double> forecast = {100.0, 10.0, 10.0};
  EXPECT_DOUBLE_EQ(mape(actual, forecast, 1), 0.0);
  EXPECT_DOUBLE_EQ(rmse(actual, forecast, 1), 0.0);
}

TEST(ErrorMetrics, SizeMismatchThrows) {
  const std::vector<double> a = {1.0};
  const std::vector<double> b = {1.0, 2.0};
  EXPECT_THROW(mape(a, b), ContractViolation);
  EXPECT_THROW(rmse(a, b), ContractViolation);
}

}  // namespace
}  // namespace ufc::traces
