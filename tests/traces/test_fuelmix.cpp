#include <gtest/gtest.h>

#include "traces/fuelmix.hpp"
#include "util/contract.hpp"
#include "util/stats.hpp"

namespace ufc::traces {
namespace {

TEST(FuelMixTrace, SharesSumToOne) {
  Rng rng(3);
  const auto mixes = generate_fuel_mix(calgary_fuel_mix(), 168, rng);
  ASSERT_EQ(mixes.size(), 168u);
  for (const auto& mix : mixes) {
    double total = 0.0;
    for (double s : mix) {
      EXPECT_GE(s, 0.0);
      total += s;
    }
    EXPECT_NEAR(total, 1.0, 1e-9);
  }
}

TEST(FuelMixTrace, DeterministicForSeed) {
  Rng a(5), b(5);
  const auto ma = generate_fuel_mix(dallas_fuel_mix(), 48, a);
  const auto mb = generate_fuel_mix(dallas_fuel_mix(), 48, b);
  for (std::size_t t = 0; t < ma.size(); ++t)
    for (std::size_t k = 0; k < kFuelTypeCount; ++k)
      EXPECT_DOUBLE_EQ(ma[t][k], mb[t][k]);
}

TEST(FuelMixTrace, TexasWindBlowsAtNight) {
  Rng rng(7);
  auto params = dallas_fuel_mix();
  params.noise_sd = 0.0;
  const auto mixes = generate_fuel_mix(params, 24, rng);
  const auto wind = static_cast<std::size_t>(FuelType::Wind);
  EXPECT_GT(mixes[3][wind], 1.5 * mixes[14][wind]);
}

TEST(FuelMixTrace, CaliforniaSolarAtMidday) {
  Rng rng(9);
  auto params = san_jose_fuel_mix();
  params.noise_sd = 0.0;
  const auto mixes = generate_fuel_mix(params, 24, rng);
  const auto solar = static_cast<std::size_t>(FuelType::Solar);
  EXPECT_GT(mixes[12][solar], mixes[20][solar] + 0.03);
  EXPECT_GT(mixes[12][solar], mixes[2][solar] + 0.03);
}

TEST(CarbonRateSeries, RegionalOrderingMatchesFuelMixes) {
  // Coal-heavy Alberta dirtiest, hydro/nuclear-rich California cleanest.
  Rng rng(11);
  const auto models = datacenter_fuel_mix_models();
  std::vector<double> means;
  for (std::size_t j = 0; j < models.size(); ++j) {
    Rng r = rng.fork(j);
    const auto rates = carbon_rate_series(generate_fuel_mix(models[j], 168, r));
    means.push_back(mean(rates));
  }
  const double calgary = means[0], san_jose = means[1], dallas = means[2],
               pittsburgh = means[3];
  EXPECT_GT(calgary, 600.0);
  EXPECT_LT(san_jose, 320.0);
  EXPECT_GT(calgary, pittsburgh);
  EXPECT_GT(dallas, san_jose);
  // All within the physically possible band of Table III.
  for (double m : means) {
    EXPECT_GT(m, 13.5);
    EXPECT_LT(m, 968.0);
  }
}

TEST(CarbonRateSeries, DiurnalVariationExists) {
  // The paper notes carbon rates exhibit diurnal patterns (§II-B2).
  Rng rng(13);
  auto params = dallas_fuel_mix();
  params.noise_sd = 0.0;
  const auto rates =
      carbon_rate_series(generate_fuel_mix(params, 24, rng));
  EXPECT_GT(max_value(rates) - min_value(rates), 20.0);
}

TEST(FuelMixTrace, EmptyBaseSharesThrow) {
  Rng rng(1);
  FuelMixModelParams empty;
  EXPECT_THROW(generate_fuel_mix(empty, 24, rng), ContractViolation);
}

}  // namespace
}  // namespace ufc::traces
