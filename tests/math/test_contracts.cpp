// Death-style contract tests: misuse of the math kernels must throw
// ufc::ContractViolation — a defined, catchable failure — rather than read or
// write out of bounds. These are exactly the paths ASan/UBSan exercise in the
// sanitizer presets; a contract that silently stopped firing would otherwise
// only show up as memory corruption.
#include <gtest/gtest.h>

#include "math/matrix.hpp"
#include "math/projections.hpp"
#include "math/vector.hpp"
#include "util/contract.hpp"

namespace ufc {
namespace {

TEST(VecContracts, OutOfRangeIndexThrows) {
  Vec v(3, 1.0);
  EXPECT_THROW(v[3], ContractViolation);
  EXPECT_THROW(v[100], ContractViolation);
  const Vec& cv = v;
  EXPECT_THROW(cv[3], ContractViolation);
}

TEST(VecContracts, EmptyVectorAnyIndexThrows) {
  Vec v;
  EXPECT_THROW(v[0], ContractViolation);
}

TEST(VecContracts, MismatchedElementwiseOpsThrow) {
  Vec a(3, 1.0);
  Vec b(4, 1.0);
  EXPECT_THROW(a += b, ContractViolation);
  EXPECT_THROW(a -= b, ContractViolation);
  EXPECT_THROW(dot(a, b), ContractViolation);
  EXPECT_THROW(axpy(2.0, a, b), ContractViolation);
  EXPECT_THROW(max_abs_diff(a, b), ContractViolation);
}

TEST(VecContracts, InRangeAccessStillWorks) {
  Vec v(3, 1.0);
  v[2] = 5.0;
  EXPECT_DOUBLE_EQ(v[2], 5.0);
}

TEST(MatContracts, OutOfRangeElementThrows) {
  Mat m(2, 3, 0.0);
  EXPECT_THROW(m(2, 0), ContractViolation);
  EXPECT_THROW(m(0, 3), ContractViolation);
  const Mat& cm = m;
  EXPECT_THROW(cm(2, 0), ContractViolation);
}

TEST(MatContracts, RowColAccessorsOutOfRangeThrow) {
  Mat m(2, 3, 0.0);
  EXPECT_THROW(m.row(2), ContractViolation);
  EXPECT_THROW(m.col(3), ContractViolation);
  EXPECT_THROW(m.row_sum(2), ContractViolation);
  EXPECT_THROW(m.col_sum(3), ContractViolation);
}

TEST(MatContracts, SetRowColDimensionMismatchThrows) {
  Mat m(2, 3, 0.0);
  EXPECT_THROW(m.set_row(0, Vec(2, 1.0)), ContractViolation);  // needs cols()=3
  EXPECT_THROW(m.set_col(0, Vec(3, 1.0)), ContractViolation);  // needs rows()=2
  EXPECT_THROW(m.set_row(2, Vec(3, 1.0)), ContractViolation);  // row OOR
}

TEST(MatContracts, MismatchedMatrixOpsThrow) {
  Mat a(2, 3, 1.0);
  Mat b(3, 2, 1.0);
  EXPECT_THROW(a += b, ContractViolation);
  EXPECT_THROW(a -= b, ContractViolation);
  EXPECT_THROW(max_abs_diff(a, b), ContractViolation);
}

TEST(ProjectionContracts, NegativeCapThrows) {
  EXPECT_THROW(project_capped_simplex(Vec(4, 1.0), -1.0), ContractViolation);
  EXPECT_THROW(project_capped_simplex(Vec(4, 1.0), -1e-9), ContractViolation);
}

TEST(ProjectionContracts, NegativeSimplexMassThrows) {
  EXPECT_THROW(project_simplex(Vec(4, 1.0), -1.0), ContractViolation);
  EXPECT_THROW(project_simplex(Vec(), 1.0), ContractViolation);  // empty input
}

TEST(ProjectionContracts, InvertedBoxThrows) {
  EXPECT_THROW(project_box(Vec(3, 0.0), 1.0, -1.0), ContractViolation);
}

TEST(ProjectionContracts, ValidArgumentsDoNotThrow) {
  EXPECT_NO_THROW(project_capped_simplex(Vec(4, 1.0), 0.0));
  EXPECT_NO_THROW(project_simplex(Vec(4, 1.0), 0.0));
}

TEST(ContractViolationType, IsCatchableAsLogicError) {
  // Library users recover from misuse via std::logic_error; verify the
  // advertised inheritance so that contract stays intact.
  Vec v(1, 0.0);
  EXPECT_THROW(v[5], std::logic_error);
}

}  // namespace
}  // namespace ufc
