#include <gtest/gtest.h>

#include "math/matrix.hpp"
#include "util/contract.hpp"

namespace ufc {
namespace {

Mat make_counting(std::size_t rows, std::size_t cols) {
  Mat m(rows, cols);
  double v = 1.0;
  for (std::size_t r = 0; r < rows; ++r)
    for (std::size_t c = 0; c < cols; ++c) m(r, c) = v++;
  return m;
}

TEST(Mat, ConstructionAndIndexing) {
  Mat m(2, 3, 0.5);
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 3u);
  EXPECT_DOUBLE_EQ(m(1, 2), 0.5);
  m(0, 1) = 9.0;
  EXPECT_DOUBLE_EQ(m(0, 1), 9.0);
}

TEST(Mat, OutOfBoundsThrows) {
  Mat m(2, 2);
  EXPECT_THROW(m(2, 0), ContractViolation);
  EXPECT_THROW(m(0, 2), ContractViolation);
}

TEST(Mat, RowAndColumnExtraction) {
  const Mat m = make_counting(2, 3);  // [1 2 3; 4 5 6]
  const Vec r = m.row(1);
  EXPECT_DOUBLE_EQ(r[0], 4.0);
  EXPECT_DOUBLE_EQ(r[2], 6.0);
  const Vec c = m.col(2);
  EXPECT_DOUBLE_EQ(c[0], 3.0);
  EXPECT_DOUBLE_EQ(c[1], 6.0);
}

TEST(Mat, SetRowAndColumn) {
  Mat m(2, 2);
  m.set_row(0, Vec{1.0, 2.0});
  m.set_col(1, Vec{7.0, 8.0});
  EXPECT_DOUBLE_EQ(m(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m(0, 1), 7.0);
  EXPECT_DOUBLE_EQ(m(1, 1), 8.0);
}

TEST(Mat, SetRowSizeMismatchThrows) {
  Mat m(2, 2);
  EXPECT_THROW(m.set_row(0, Vec{1.0}), ContractViolation);
  EXPECT_THROW(m.set_col(0, Vec{1.0, 2.0, 3.0}), ContractViolation);
}

TEST(Mat, RowAndColumnSums) {
  const Mat m = make_counting(2, 3);
  EXPECT_DOUBLE_EQ(m.row_sum(0), 6.0);
  EXPECT_DOUBLE_EQ(m.row_sum(1), 15.0);
  EXPECT_DOUBLE_EQ(m.col_sum(0), 5.0);
  EXPECT_DOUBLE_EQ(m.col_sum(2), 9.0);
}

TEST(Mat, ElementwiseArithmetic) {
  Mat a = make_counting(2, 2);
  Mat b = make_counting(2, 2);
  a += b;
  EXPECT_DOUBLE_EQ(a(1, 1), 8.0);
  a -= b;
  EXPECT_DOUBLE_EQ(a(1, 1), 4.0);
  a *= 0.5;
  EXPECT_DOUBLE_EQ(a(0, 0), 0.5);
}

TEST(Mat, ShapeMismatchThrows) {
  Mat a(2, 2), b(2, 3);
  EXPECT_THROW(a += b, ContractViolation);
  EXPECT_THROW(max_abs_diff(a, b), ContractViolation);
}

TEST(Mat, NormsAndSum) {
  Mat m(1, 2);
  m(0, 0) = 3.0;
  m(0, 1) = -4.0;
  EXPECT_DOUBLE_EQ(frobenius_norm(m), 5.0);
  EXPECT_DOUBLE_EQ(sum(m), -1.0);
  Mat z(1, 2, 0.0);
  EXPECT_DOUBLE_EQ(max_abs_diff(m, z), 4.0);
}

TEST(Mat, TransposeIntoSwapsIndices) {
  const Mat m = make_counting(2, 3);
  Mat t;
  m.transpose_into(t);
  ASSERT_EQ(t.rows(), 3u);
  ASSERT_EQ(t.cols(), 2u);
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c) EXPECT_EQ(t(c, r), m(r, c));
}

TEST(Mat, TransposeIntoResizesMismatchedOutput) {
  const Mat m = make_counting(3, 2);
  Mat t(5, 7);  // wrong shape: must be re-shaped, not trip a contract
  m.transpose_into(t);
  ASSERT_EQ(t.rows(), 2u);
  ASSERT_EQ(t.cols(), 3u);
  EXPECT_EQ(t(1, 2), m(2, 1));
}

TEST(Mat, TransposeIntoRoundTripsAcrossBlockBoundary) {
  // 37x65 straddles the 32x32 tiling in both dimensions, covering the
  // partial edge tiles; a round trip must restore every entry bitwise.
  const Mat m = make_counting(37, 65);
  Mat t, back;
  m.transpose_into(t);
  t.transpose_into(back);
  ASSERT_EQ(back.rows(), m.rows());
  ASSERT_EQ(back.cols(), m.cols());
  EXPECT_EQ(max_abs_diff(back, m), 0.0);
}

TEST(Mat, TransposeIntoSelfAliasThrows) {
  Mat m = make_counting(2, 2);
  EXPECT_THROW(m.transpose_into(m), ContractViolation);
}

}  // namespace
}  // namespace ufc
