// Projection correctness, including property-style checks of the two
// defining conditions: feasibility of the output and the variational
// inequality <v - P(v), x - P(v)> <= 0 for sampled feasible x.
#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "math/projections.hpp"
#include "util/contract.hpp"
#include "util/rng.hpp"

namespace ufc {
namespace {

bool in_simplex(const Vec& x, double total, double tol = 1e-9) {
  double s = 0.0;
  for (double v : x) {
    if (v < -tol) return false;
    s += v;
  }
  return std::abs(s - total) <= tol * std::max(1.0, total);
}

Vec random_vec(Rng& rng, std::size_t n, double lo, double hi) {
  Vec v(n);
  for (auto& x : v) x = rng.uniform(lo, hi);
  return v;
}

Vec random_simplex_point(Rng& rng, std::size_t n, double total) {
  Vec v(n);
  double s = 0.0;
  for (auto& x : v) {
    x = rng.uniform(0.0, 1.0);
    s += x;
  }
  for (auto& x : v) x *= total / s;
  return v;
}

TEST(ProjectBox, ClampsEachEntry) {
  const Vec p = project_box(Vec{-2.0, 0.5, 7.0}, 0.0, 1.0);
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 0.5);
  EXPECT_DOUBLE_EQ(p[2], 1.0);
}

TEST(ProjectBox, InvalidBoundsThrow) {
  EXPECT_THROW(project_box(Vec{1.0}, 2.0, 1.0), ContractViolation);
}

TEST(ProjectSimplex, FeasiblePointIsFixed) {
  const Vec v{0.2, 0.3, 0.5};
  const Vec p = project_simplex(v, 1.0);
  EXPECT_LT(max_abs_diff(p, v), 1e-12);
}

TEST(ProjectSimplex, KnownSolution) {
  // Project (2, 0) onto sum = 1: (1.5, -0.5) -> clip -> (1, 0).
  const Vec p = project_simplex(Vec{2.0, 0.0}, 1.0);
  EXPECT_NEAR(p[0], 1.0, 1e-12);
  EXPECT_NEAR(p[1], 0.0, 1e-12);
}

TEST(ProjectSimplex, UniformPullForInteriorCase) {
  const Vec p = project_simplex(Vec{0.6, 0.6}, 1.0);
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_NEAR(p[1], 0.5, 1e-12);
}

TEST(ProjectSimplex, ZeroTotalGivesZeroVector) {
  const Vec p = project_simplex(Vec{3.0, -1.0}, 0.0);
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 0.0);
}

TEST(ProjectSimplex, NegativeTotalThrows) {
  EXPECT_THROW(project_simplex(Vec{1.0}, -1.0), ContractViolation);
}

class SimplexProjectionProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SimplexProjectionProperty, OutputFeasibleAndVariationallyOptimal) {
  Rng rng(GetParam());
  const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 7));
  const double total = rng.uniform(0.1, 50.0);
  const Vec v = random_vec(rng, n, -20.0, 20.0);
  const Vec p = project_simplex(v, total);

  EXPECT_TRUE(in_simplex(p, total));

  // Variational inequality against sampled feasible points.
  const Vec residual = v - p;
  for (int k = 0; k < 20; ++k) {
    const Vec x = random_simplex_point(rng, n, total);
    EXPECT_LE(dot(residual, x - p), 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplexProjectionProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(ProjectCappedSimplex, SlackCaseOnlyClipsNegatives) {
  const Vec p = project_capped_simplex(Vec{0.5, -0.2, 0.3}, 10.0);
  EXPECT_DOUBLE_EQ(p[0], 0.5);
  EXPECT_DOUBLE_EQ(p[1], 0.0);
  EXPECT_DOUBLE_EQ(p[2], 0.3);
}

TEST(ProjectCappedSimplex, TightCaseEqualsSimplexProjection) {
  const Vec v{3.0, 2.0, 1.0};
  const Vec p = project_capped_simplex(v, 2.0);
  const Vec q = project_simplex(v, 2.0);
  EXPECT_LT(max_abs_diff(p, q), 1e-12);
}

class CappedSimplexProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CappedSimplexProperty, OutputFeasibleAndVariationallyOptimal) {
  Rng rng(GetParam() + 1000);
  const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 7));
  const double cap = rng.uniform(0.1, 20.0);
  const Vec v = random_vec(rng, n, -10.0, 10.0);
  const Vec p = project_capped_simplex(v, cap);

  double s = 0.0;
  for (double x : p) {
    EXPECT_GE(x, 0.0);
    s += x;
  }
  EXPECT_LE(s, cap + 1e-9);

  const Vec residual = v - p;
  for (int k = 0; k < 20; ++k) {
    // Random feasible point: scale a simplex point by a random factor <= 1.
    Vec x = random_simplex_point(rng, n, cap * rng.uniform(0.0, 1.0));
    EXPECT_LE(dot(residual, x - p), 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CappedSimplexProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(ProjectAffineSum, ShiftsUniformly) {
  const Vec p = project_affine_sum(Vec{1.0, 2.0, 3.0}, 12.0);
  EXPECT_DOUBLE_EQ(p[0], 3.0);
  EXPECT_DOUBLE_EQ(p[1], 4.0);
  EXPECT_DOUBLE_EQ(p[2], 5.0);
}

TEST(ProjectHalfspace, InsidePointIsFixed) {
  const Vec v{1.0, 1.0};
  const Vec p = project_halfspace(v, Vec{1.0, 1.0}, 3.0);
  EXPECT_LT(max_abs_diff(p, v), 1e-12);
}

TEST(ProjectHalfspace, OutsidePointLandsOnBoundary) {
  const Vec p = project_halfspace(Vec{2.0, 2.0}, Vec{1.0, 1.0}, 2.0);
  EXPECT_NEAR(p[0] + p[1], 2.0, 1e-12);
  EXPECT_NEAR(p[0], 1.0, 1e-12);
}

TEST(ProjectHalfspace, ZeroNormalThrows) {
  EXPECT_THROW(project_halfspace(Vec{1.0}, Vec{0.0}, 1.0), ContractViolation);
}

TEST(ProjectNonnegative, ClipsNegatives) {
  const Vec p = project_nonnegative(Vec{-1.0, 2.0});
  EXPECT_DOUBLE_EQ(p[0], 0.0);
  EXPECT_DOUBLE_EQ(p[1], 2.0);
}

// ---------------------------------------------------------------------------
// Condat O(n) projection vs. the sort-and-threshold reference.
//
// Both compute the same threshold tau mathematically, but accumulate it in
// different orders, so the outputs may differ by a few ulps of tau. The
// tolerance below is the documented bound: 32 ulps of the problem magnitude
// (docs/PERFORMANCE.md, "Scaling frontier"). Support sets may legitimately
// differ only for entries within that band of tau, whose values are ~0 in
// both outputs, so value closeness is the meaningful contract.

double ulp_scale(const Vec& v, double total) {
  double scale = std::max(1.0, total);
  for (double x : v) scale = std::max(scale, std::abs(x));
  return 32.0 * std::numeric_limits<double>::epsilon() * scale;
}

Vec condat_simplex(const Vec& v, double total) {
  Vec out(v.size());
  std::vector<double> scratch;
  project_simplex_condat_into(v.span(), total, out.span(), scratch);
  return out;
}

Vec condat_capped(const Vec& v, double cap) {
  Vec out(v.size());
  std::vector<double> scratch;
  project_capped_simplex_condat_into(v.span(), cap, out.span(), scratch);
  return out;
}

class CondatVsSortProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(CondatVsSortProperty, AgreesWithReferenceOnRandomInputs) {
  Rng rng(GetParam() + 2000);
  const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 200));
  const double total = rng.uniform(0.1, 50.0);
  const Vec v = random_vec(rng, n, -20.0, 20.0);
  const Vec reference = project_simplex(v, total);
  const Vec fast = condat_simplex(v, total);
  EXPECT_TRUE(in_simplex(fast, total));
  EXPECT_LE(max_abs_diff(fast, reference), ulp_scale(v, total));
}

TEST_P(CondatVsSortProperty, CappedAgreesWithReferenceOnRandomInputs) {
  Rng rng(GetParam() + 3000);
  const std::size_t n = 1 + static_cast<std::size_t>(rng.uniform_int(0, 200));
  const double cap = rng.uniform(0.1, 20.0);
  const Vec v = random_vec(rng, n, -10.0, 10.0);
  const Vec reference = project_capped_simplex(v, cap);
  const Vec fast = condat_capped(v, cap);
  double s = 0.0;
  for (double x : fast) {
    EXPECT_GE(x, 0.0);
    s += x;
  }
  EXPECT_LE(s, cap + ulp_scale(v, cap));
  EXPECT_LE(max_abs_diff(fast, reference), ulp_scale(v, cap));
}

INSTANTIATE_TEST_SUITE_P(Seeds, CondatVsSortProperty,
                         ::testing::Range<std::uint64_t>(1, 17));

TEST(CondatProjection, AllEntriesTied) {
  // Every entry equal: projection splits the total uniformly. Exercises the
  // pruning sweep with a fully tied active list.
  const std::size_t n = 9;
  const Vec v(n, 3.7);
  const Vec fast = condat_simplex(v, 1.0);
  const Vec reference = project_simplex(v, 1.0);
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_NEAR(fast[i], 1.0 / static_cast<double>(n), 1e-12);
  }
  EXPECT_LE(max_abs_diff(fast, reference), ulp_scale(v, 1.0));
}

TEST(CondatProjection, TiedBlocksStraddlingThreshold) {
  // Two tied blocks, one above and one below the threshold.
  const Vec v{5.0, 5.0, 5.0, 1.0, 1.0, 1.0};
  const Vec fast = condat_simplex(v, 2.0);
  const Vec reference = project_simplex(v, 2.0);
  EXPECT_TRUE(in_simplex(fast, 2.0));
  EXPECT_LE(max_abs_diff(fast, reference), ulp_scale(v, 2.0));
  EXPECT_DOUBLE_EQ(fast[3], 0.0);  // below-threshold entries are hard zeros
}

TEST(CondatProjection, AllZeroInput) {
  const Vec v(5, 0.0);
  const Vec fast = condat_simplex(v, 2.0);
  const Vec reference = project_simplex(v, 2.0);
  EXPECT_LE(max_abs_diff(fast, reference), ulp_scale(v, 2.0));
  for (double x : fast) EXPECT_NEAR(x, 0.4, 1e-15);
}

TEST(CondatProjection, SingleDominantEntry) {
  // One huge entry takes the whole budget; the rest are hard zeros.
  Vec v(6, -3.0);
  v[2] = 100.0;
  const Vec fast = condat_simplex(v, 1.5);
  EXPECT_DOUBLE_EQ(fast[2], 1.5);
  for (std::size_t i = 0; i < v.size(); ++i) {
    if (i != 2) {
      EXPECT_DOUBLE_EQ(fast[i], 0.0);
    }
  }
}

TEST(CondatProjection, SingleElementVector) {
  const Vec fast = condat_simplex(Vec{(-4.0)}, 2.5);
  EXPECT_DOUBLE_EQ(fast[0], 2.5);
}

TEST(CondatProjection, ZeroTotalGivesZeroVector) {
  const Vec fast = condat_simplex(Vec{3.0, -1.0}, 0.0);
  EXPECT_DOUBLE_EQ(fast[0], 0.0);
  EXPECT_DOUBLE_EQ(fast[1], 0.0);
}

TEST(CondatProjection, InPlaceAliasingMatchesOutOfPlace) {
  // The contract allows out to alias v; verify bitwise agreement.
  const Vec v{2.0, -1.0, 0.5, 0.5};
  const Vec expected = condat_simplex(v, 1.0);
  Vec inplace = v;
  std::vector<double> scratch;
  project_simplex_condat_into(inplace.span(), 1.0, inplace.span(), scratch);
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_EQ(inplace[i], expected[i]);
}

TEST(CondatProjection, ScratchGrowsButNeverShrinks) {
  std::vector<double> scratch;
  Vec out8(8);
  condat_simplex(Vec(3, 1.0), 1.0);  // warm-up irrelevant to scratch below
  project_simplex_condat_into(Vec(8, 1.0).span(), 1.0, out8.span(), scratch);
  const std::size_t cap_after_8 = scratch.capacity();
  Vec out3(3);
  project_simplex_condat_into(Vec(3, 1.0).span(), 1.0, out3.span(), scratch);
  EXPECT_EQ(scratch.capacity(), cap_after_8);
}

TEST(CondatCappedProjection, SlackCaseOnlyClipsNegatives) {
  const Vec fast = condat_capped(Vec{0.5, -0.2, 0.3}, 10.0);
  EXPECT_DOUBLE_EQ(fast[0], 0.5);
  EXPECT_DOUBLE_EQ(fast[1], 0.0);
  EXPECT_DOUBLE_EQ(fast[2], 0.3);
}

TEST(CondatCappedProjection, TightCaseMatchesSimplexCondat) {
  const Vec v{3.0, 2.0, 1.0};
  const Vec capped = condat_capped(v, 2.0);
  const Vec simplex = condat_simplex(v, 2.0);
  for (std::size_t i = 0; i < v.size(); ++i)
    EXPECT_EQ(capped[i], simplex[i]);
}

}  // namespace
}  // namespace ufc
