#include <gtest/gtest.h>

#include "math/vector.hpp"
#include "util/contract.hpp"

namespace ufc {
namespace {

TEST(Vec, ConstructionAndAccess) {
  Vec v(3, 1.5);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[0], 1.5);
  v[2] = -2.0;
  EXPECT_DOUBLE_EQ(v[2], -2.0);
}

TEST(Vec, InitializerList) {
  Vec v{1.0, 2.0, 3.0};
  EXPECT_EQ(v.size(), 3u);
  EXPECT_DOUBLE_EQ(v[1], 2.0);
}

TEST(Vec, OutOfBoundsThrows) {
  Vec v(2);
  EXPECT_THROW(v[2], ContractViolation);
  const Vec& cv = v;
  EXPECT_THROW(cv[5], ContractViolation);
}

TEST(Vec, ArithmeticOperators) {
  Vec a{1.0, 2.0};
  Vec b{3.0, -1.0};
  const Vec s = a + b;
  EXPECT_DOUBLE_EQ(s[0], 4.0);
  EXPECT_DOUBLE_EQ(s[1], 1.0);
  const Vec d = a - b;
  EXPECT_DOUBLE_EQ(d[0], -2.0);
  const Vec m = 2.0 * a;
  EXPECT_DOUBLE_EQ(m[1], 4.0);
}

TEST(Vec, SizeMismatchThrows) {
  Vec a{1.0};
  Vec b{1.0, 2.0};
  EXPECT_THROW(a += b, ContractViolation);
  EXPECT_THROW(dot(a, b), ContractViolation);
}

TEST(Vec, DotAndNorms) {
  Vec a{3.0, 4.0};
  EXPECT_DOUBLE_EQ(dot(a, a), 25.0);
  EXPECT_DOUBLE_EQ(norm2(a), 5.0);
  EXPECT_DOUBLE_EQ(norm_inf(Vec{-7.0, 2.0}), 7.0);
  EXPECT_DOUBLE_EQ(sum(a), 7.0);
}

TEST(Vec, Axpy) {
  Vec x{1.0, 2.0};
  Vec y{10.0, 20.0};
  axpy(3.0, x, y);
  EXPECT_DOUBLE_EQ(y[0], 13.0);
  EXPECT_DOUBLE_EQ(y[1], 26.0);
}

TEST(Vec, MaxAbsDiff) {
  EXPECT_DOUBLE_EQ(max_abs_diff(Vec{1.0, 5.0}, Vec{2.0, 3.5}), 1.5);
  EXPECT_DOUBLE_EQ(max_abs_diff(Vec{1.0}, Vec{1.0}), 0.0);
}

TEST(Vec, FillAndResize) {
  Vec v(2);
  v.fill(7.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
  v.resize(4, -1.0);
  EXPECT_EQ(v.size(), 4u);
  EXPECT_DOUBLE_EQ(v[3], -1.0);
  EXPECT_DOUBLE_EQ(v[0], 7.0);
}

}  // namespace
}  // namespace ufc
