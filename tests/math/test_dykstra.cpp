#include <gtest/gtest.h>

#include "math/dykstra.hpp"
#include "math/projections.hpp"
#include "util/contract.hpp"
#include "util/rng.hpp"

namespace ufc {
namespace {

TEST(Dykstra, SingleSetEqualsDirectProjection) {
  const Vec v{3.0, -1.0, 0.5};
  auto box = [](const Vec& x) { return project_box(x, 0.0, 1.0); };
  const auto result = dykstra_project(v, {box});
  EXPECT_TRUE(result.converged);
  EXPECT_LT(max_abs_diff(result.point, project_box(v, 0.0, 1.0)), 1e-9);
}

TEST(Dykstra, BoxIntersectHalfspaceKnownSolution) {
  // Project (2, 2) onto [0,1]^2 intersect {x + y <= 1}. True projection of
  // (2,2): symmetric, lands at (0.5, 0.5).
  auto box = [](const Vec& x) { return project_box(x, 0.0, 1.0); };
  auto half = [](const Vec& x) {
    return project_halfspace(x, Vec{1.0, 1.0}, 1.0);
  };
  const auto result = dykstra_project(Vec{2.0, 2.0}, {box, half});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.point[0], 0.5, 1e-7);
  EXPECT_NEAR(result.point[1], 0.5, 1e-7);
}

TEST(Dykstra, DiffersFromAlternatingProjectionsWhereItShould) {
  // Projecting (2, 0.8) onto [0,1]^2 intersect {x + y <= 1}:
  // the true nearest point solves min (x-2)^2 + (y-0.8)^2 on the segment
  // x + y = 1, x in [0.1... ]: x - y = 1.2 & x + y = 1 -> (1.1, -0.1) ->
  // corner handling puts it at (1, 0). Naive alternating projections would
  // stop at a different point.
  auto box = [](const Vec& x) { return project_box(x, 0.0, 1.0); };
  auto half = [](const Vec& x) {
    return project_halfspace(x, Vec{1.0, 1.0}, 1.0);
  };
  const auto result = dykstra_project(Vec{2.0, 0.8}, {box, half});
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.point[0], 1.0, 1e-6);
  EXPECT_NEAR(result.point[1], 0.0, 1e-6);
}

TEST(Dykstra, VariationalOptimalityOnRandomInstances) {
  Rng rng(77);
  auto box = [](const Vec& x) { return project_box(x, 0.0, 2.0); };
  auto half = [](const Vec& x) {
    return project_halfspace(x, Vec{1.0, 1.0, 1.0}, 3.0);
  };
  for (int trial = 0; trial < 20; ++trial) {
    Vec v(3);
    for (auto& x : v) x = rng.uniform(-4.0, 6.0);
    const auto result = dykstra_project(v, {box, half});
    ASSERT_TRUE(result.converged);
    const Vec& p = result.point;
    const Vec residual = v - p;
    // Sample feasible points and verify <v - p, x - p> <= 0.
    for (int k = 0; k < 30; ++k) {
      Vec x(3);
      do {
        for (auto& e : x) e = rng.uniform(0.0, 2.0);
      } while (x[0] + x[1] + x[2] > 3.0);
      EXPECT_LE(dot(residual, x - p), 1e-6);
    }
  }
}

TEST(Dykstra, NoProjectorsThrows) {
  EXPECT_THROW(dykstra_project(Vec{1.0}, {}), ContractViolation);
}

TEST(Dykstra, ReportsSweepCount) {
  auto identity = [](const Vec& x) { return x; };
  const auto result = dykstra_project(Vec{1.0, 2.0}, {identity});
  EXPECT_TRUE(result.converged);
  EXPECT_GE(result.sweeps, 1);
}

}  // namespace
}  // namespace ufc
