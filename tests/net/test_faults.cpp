// FaultPlan semantics and the fault-injecting transport of MessageBus:
// scripted partitions/crashes, bounded loss with capped retries and backoff
// accounting, payload corruption, delivery delay, and determinism per seed.
#include <gtest/gtest.h>

#include "net/bus.hpp"
#include "net/faults.hpp"
#include "util/contract.hpp"

namespace ufc::net {
namespace {

Message make_message(NodeId src, NodeId dst, double value) {
  Message msg;
  msg.source = src;
  msg.destination = dst;
  msg.type = MessageType::RoutingProposal;
  msg.payload = {value};
  return msg;
}

TEST(FaultPlan, DefaultIsZeroFault) {
  FaultPlan plan;
  EXPECT_TRUE(plan.empty());
  EXPECT_TRUE(plan.delivery_preserving());
  EXPECT_FALSE(plan.link_blocked(front_end_id(0), datacenter_id(0), 0));
  EXPECT_FALSE(plan.node_down(datacenter_id(0), 0));
}

TEST(FaultPlan, LossAloneIsDeliveryPreserving) {
  FaultPlan plan;
  plan.random_faults({.loss_rate = 0.5});
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(plan.delivery_preserving());
}

TEST(FaultPlan, CorruptionDelayPartitionCrashAreNotDeliveryPreserving) {
  {
    FaultPlan plan;
    plan.random_faults({.corruption_rate = 0.1});
    EXPECT_FALSE(plan.delivery_preserving());
  }
  {
    FaultPlan plan;
    plan.random_faults({.delay_rate = 0.1});
    EXPECT_FALSE(plan.delivery_preserving());
  }
  {
    FaultPlan plan;
    plan.partition(front_end_id(0), datacenter_id(0), {0, 10});
    EXPECT_FALSE(plan.delivery_preserving());
  }
  {
    FaultPlan plan;
    plan.crash(datacenter_id(0), {0, kForeverRound});
    EXPECT_FALSE(plan.delivery_preserving());
  }
}

TEST(FaultPlan, PartitionIsSymmetricAndWindowed) {
  FaultPlan plan;
  plan.partition(front_end_id(0), datacenter_id(1), {3, 7});
  EXPECT_FALSE(plan.link_blocked(front_end_id(0), datacenter_id(1), 2));
  EXPECT_TRUE(plan.link_blocked(front_end_id(0), datacenter_id(1), 3));
  EXPECT_TRUE(plan.link_blocked(datacenter_id(1), front_end_id(0), 6));
  EXPECT_FALSE(plan.link_blocked(front_end_id(0), datacenter_id(1), 7));
  EXPECT_FALSE(plan.link_blocked(front_end_id(0), datacenter_id(0), 5));
}

TEST(FaultPlan, CrashWindowIsHalfOpen) {
  FaultPlan plan;
  plan.crash(datacenter_id(0), {2, 5});
  EXPECT_FALSE(plan.node_down(datacenter_id(0), 1));
  EXPECT_TRUE(plan.node_down(datacenter_id(0), 2));
  EXPECT_TRUE(plan.node_down(datacenter_id(0), 4));
  EXPECT_FALSE(plan.node_down(datacenter_id(0), 5));
  EXPECT_FALSE(plan.node_down(datacenter_id(1), 3));
}

TEST(FaultPlan, ValidatesSpecs) {
  FaultPlan plan;
  EXPECT_THROW(plan.partition(front_end_id(0), front_end_id(0), {0, 5}),
               ContractViolation);
  EXPECT_THROW(plan.partition(front_end_id(0), datacenter_id(0), {5, 5}),
               ContractViolation);
  EXPECT_THROW(plan.partition(front_end_id(0), datacenter_id(0), {-1, 5}),
               ContractViolation);
  EXPECT_THROW(plan.crash(kCoordinatorId, {0, 5}), ContractViolation);
  EXPECT_THROW(plan.random_faults({.loss_rate = 1.0}), ContractViolation);
  EXPECT_THROW(plan.random_faults({.corruption_rate = -0.1}),
               ContractViolation);
  EXPECT_THROW(plan.random_faults({.delay_rate = 0.5, .max_delay_rounds = 0}),
               ContractViolation);
}

TEST(FaultBus, NonPreservingPlanRequiresAttemptCap) {
  BusConfig config;
  config.faults.partition(front_end_id(0), datacenter_id(0), {0, 5});
  EXPECT_THROW(MessageBus{config}, ContractViolation);
  config.max_attempts = 1;
  EXPECT_NO_THROW(MessageBus{config});
}

TEST(FaultBus, NegativeAttemptCapThrows) {
  BusConfig config;
  config.max_attempts = -1;
  EXPECT_THROW(MessageBus{config}, ContractViolation);
}

TEST(FaultBus, PartitionExhaustsAttemptsWithBackoffAccounting) {
  BusConfig config;
  config.max_attempts = 3;
  config.faults.partition(front_end_id(0), datacenter_id(0),
                          {0, kForeverRound});
  MessageBus bus(config);
  const auto msg = make_message(front_end_id(0), datacenter_id(0), 1.0);

  EXPECT_EQ(bus.send(msg), SendOutcome::Failed);
  const auto link = bus.link(front_end_id(0), datacenter_id(0));
  EXPECT_EQ(link.delivery_failures, 1u);
  EXPECT_EQ(link.retransmissions, 3u);       // every attempt dropped
  EXPECT_EQ(link.bytes, 3 * wire_size(msg));  // all attempts on the wire
  EXPECT_EQ(link.messages, 0u);              // never delivered
  // Exponential backoff before retries 2 and 3: 2^0 + 2^1 rounds.
  EXPECT_EQ(link.backoff_rounds, 3u);
  EXPECT_EQ(bus.pending(datacenter_id(0)), 0u);

  // An unrelated link is unaffected.
  EXPECT_EQ(bus.send(make_message(front_end_id(1), datacenter_id(0), 2.0)),
            SendOutcome::Delivered);
}

TEST(FaultBus, CrashedEndpointFailsSends) {
  BusConfig config;
  config.max_attempts = 2;
  config.faults.crash(datacenter_id(0), {1, 3});
  MessageBus bus(config);
  const auto msg = make_message(front_end_id(0), datacenter_id(0), 1.0);

  bus.begin_round(0);
  EXPECT_EQ(bus.send(msg), SendOutcome::Delivered);
  bus.begin_round(1);
  EXPECT_EQ(bus.send(msg), SendOutcome::Failed);
  bus.begin_round(3);
  EXPECT_EQ(bus.send(msg), SendOutcome::Delivered);
  EXPECT_EQ(bus.total().delivery_failures, 1u);
}

TEST(FaultBus, CorruptionDiscardsFrameAndCounts) {
  BusConfig config;
  config.max_attempts = 1;
  config.faults.random_faults({.corruption_rate = 0.999});
  MessageBus bus(config);
  // Under ASan/UBSan this also fuzzes deserialize on mutated frames: the
  // bus decodes every corrupted frame before discarding it.
  for (int k = 0; k < 50; ++k)
    bus.send(make_message(front_end_id(0), datacenter_id(0), 1.0));
  EXPECT_GT(bus.total().corrupted, 40u);
  EXPECT_EQ(bus.total().corrupted + bus.pending(datacenter_id(0)), 50u);
}

TEST(FaultBus, DelayedMessagesReleaseInDeterministicOrder) {
  BusConfig config;
  config.max_attempts = 1;
  config.faults.random_faults({.delay_rate = 0.999, .max_delay_rounds = 2});
  MessageBus bus(config);
  bus.begin_round(0);
  int delayed = 0;
  for (int k = 0; k < 20; ++k) {
    const auto outcome =
        bus.send(make_message(front_end_id(0), datacenter_id(0), k));
    if (outcome == SendOutcome::Delayed) ++delayed;
  }
  EXPECT_GT(delayed, 15);
  EXPECT_EQ(bus.delayed_pending(), static_cast<std::size_t>(delayed));

  // Advancing the clock far enough releases everything, in send order per
  // release round.
  bus.begin_round(3);
  EXPECT_EQ(bus.delayed_pending(), 0u);
  EXPECT_EQ(bus.pending(datacenter_id(0)), 20u);
  // Messages release grouped by release round, send order preserved within
  // each group; with max_delay_rounds = 2 the payload sequence can descend
  // at most once per group boundary.
  double prev = -1.0;
  int descents = 0;
  while (auto msg = bus.receive(datacenter_id(0))) {
    if (msg->payload[0] < prev) ++descents;
    prev = msg->payload[0];
  }
  EXPECT_LE(descents, 2);
}

TEST(FaultBus, OutcomeAccountingIsConserved) {
  BusConfig config;
  config.max_attempts = 4;
  config.faults.random_faults({.loss_rate = 0.2,
                               .corruption_rate = 0.1,
                               .delay_rate = 0.3,
                               .max_delay_rounds = 3});
  MessageBus bus(config);
  std::size_t delivered = 0, delayed = 0, corrupted = 0, failed = 0;
  for (int round = 0; round < 20; ++round) {
    bus.begin_round(round);
    for (int k = 0; k < 10; ++k) {
      switch (bus.send(make_message(front_end_id(0), datacenter_id(0), k))) {
        case SendOutcome::Delivered: ++delivered; break;
        case SendOutcome::Delayed: ++delayed; break;
        case SendOutcome::Corrupted: ++corrupted; break;
        case SendOutcome::Failed: ++failed; break;
      }
    }
  }
  EXPECT_EQ(delivered + delayed + corrupted + failed, 200u);
  // Release all in-flight messages; every delayed send must surface.
  bus.begin_round(25);
  EXPECT_EQ(bus.delayed_pending(), 0u);
  EXPECT_EQ(bus.pending(datacenter_id(0)), delivered + delayed);
  EXPECT_EQ(bus.total().corrupted, corrupted);
  EXPECT_EQ(bus.total().delivery_failures, failed);
  EXPECT_EQ(bus.total().delayed, delayed);
}

TEST(FaultBus, SameSeedSameOutcomes) {
  auto run = [] {
    BusConfig config;
    config.seed = 1234;
    config.max_attempts = 3;
    config.faults.random_faults({.loss_rate = 0.3,
                                 .corruption_rate = 0.2,
                                 .delay_rate = 0.2,
                                 .max_delay_rounds = 2});
    MessageBus bus(config);
    for (int round = 0; round < 10; ++round) {
      bus.begin_round(round);
      for (std::size_t k = 0; k < 10; ++k)
        bus.send(make_message(front_end_id(k), datacenter_id(0),
                              static_cast<double>(k)));
    }
    return bus.total();
  };
  const LinkStats a = run();
  const LinkStats b = run();
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.bytes, b.bytes);
  EXPECT_EQ(a.retransmissions, b.retransmissions);
  EXPECT_EQ(a.delivery_failures, b.delivery_failures);
  EXPECT_EQ(a.corrupted, b.corrupted);
  EXPECT_EQ(a.delayed, b.delayed);
  EXPECT_EQ(a.backoff_rounds, b.backoff_rounds);
}

TEST(FaultBus, ClearQueuesDropsDeliveredAndDelayed) {
  BusConfig config;
  config.max_attempts = 1;
  config.faults.random_faults({.delay_rate = 0.5, .max_delay_rounds = 1});
  MessageBus bus(config);
  for (int k = 0; k < 20; ++k)
    bus.send(make_message(front_end_id(0), datacenter_id(0), k));
  bus.clear_queues();
  EXPECT_EQ(bus.pending(datacenter_id(0)), 0u);
  EXPECT_EQ(bus.delayed_pending(), 0u);
}

TEST(FaultBus, ZeroFaultConfigMatchesLegacyTransport) {
  MessageBus legacy;
  MessageBus configured{BusConfig{}};
  const auto msg = make_message(front_end_id(0), datacenter_id(0), 42.0);
  EXPECT_EQ(legacy.send(msg), SendOutcome::Delivered);
  EXPECT_EQ(configured.send(msg), SendOutcome::Delivered);
  EXPECT_EQ(legacy.total().messages, configured.total().messages);
  EXPECT_EQ(legacy.total().bytes, configured.total().bytes);
}

}  // namespace
}  // namespace ufc::net
