// Multi-process fleet tests: the Supervisor forks real worker processes and
// the coordinator talks to them over the socket transport. The assertions
// cross-check the fleet against the in-process degraded runtime — the same
// protocol, so the same answers — and against the centralized oracle for
// the graceful-degradation path.
//
// Environments that refuse sockets or fork (some sandboxes) skip.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <optional>
#include <stdexcept>
#include <vector>

#include "admm/admg.hpp"
#include "admm/centralized.hpp"
#include "helpers.hpp"
#include "net/runtime.hpp"
#include "net/supervisor.hpp"
#include "util/contract.hpp"

namespace ufc::net {
namespace {

using ::ufc::testing::make_tiny_problem;

admm::AdmgOptions tight() {
  admm::AdmgOptions options;
  options.tolerance = 1e-6;
  options.max_iterations = 5000;
  return options;
}

/// Same shape as test_degraded.cpp: three datacenters, any one removable
/// with enough surviving capacity that degradation stays feasible.
UfcProblem make_three_dc_problem() {
  UfcProblem p = make_tiny_problem();
  DatacenterSpec third;
  third.name = "backup";
  third.servers = 900.0;
  third.pue = 1.3;
  third.grid_price = 60.0;
  third.carbon_rate = 500.0;
  third.fuel_cell_capacity_mw = 200.0 * 900.0 * 1.3 / 1e6;
  third.emission_cost = std::make_shared<AffineCarbonTax>(25.0);
  p.datacenters.push_back(std::move(third));
  Mat latency(2, 3);
  latency(0, 0) = 0.010;
  latency(0, 1) = 0.030;
  latency(0, 2) = 0.025;
  latency(1, 0) = 0.040;
  latency(1, 1) = 0.015;
  latency(1, 2) = 0.020;
  p.latency_s = latency;
  return p;
}

SupervisorOptions base_options() {
  SupervisorOptions options;
  options.distributed.admg = tight();
  options.distributed.degraded = true;
  options.processes = 2;
  return options;
}

/// Runs the fleet, converting environment refusals (no sockets, no fork)
/// into a skip instead of a failure.
std::optional<SupervisedReport> run_or_skip(const UfcProblem& problem,
                                            const SupervisorOptions& options) {
  try {
    return Supervisor(problem, options).run();
  } catch (const std::runtime_error& error) {
    return std::nullopt;
  }
}

TEST(Supervised, ZeroFaultFleetMatchesInProcessRun) {
  const auto problem = make_three_dc_problem();
  const auto fleet = run_or_skip(problem, base_options());
  if (!fleet.has_value()) GTEST_SKIP() << "fork/socket unavailable";

  DistributedOptions dist;
  dist.admg = tight();
  dist.degraded = true;
  const auto mono = DistributedAdmgRuntime(problem, dist).run();

  EXPECT_TRUE(fleet->converged);
  EXPECT_EQ(fleet->removed_datacenters.size(), 0u);
  EXPECT_EQ(fleet->workers_spawned, 2u);
  EXPECT_EQ(fleet->workers_exited, 2u);
  EXPECT_EQ(fleet->workers_killed, 0u);
  // The wire is the only difference between the two runs; doubles travel
  // bit-exact, so a fleet that never went stale reproduces the in-process
  // trajectory digit for digit.
  if (fleet->stale_inputs == 0) {
    EXPECT_EQ(fleet->iterations, mono.iterations);
    EXPECT_EQ(max_abs_diff(fleet->solution.lambda, mono.solution.lambda), 0.0);
    EXPECT_EQ(max_abs_diff(fleet->solution.mu, mono.solution.mu), 0.0);
    EXPECT_EQ(max_abs_diff(fleet->solution.nu, mono.solution.nu), 0.0);
    EXPECT_EQ(fleet->breakdown.ufc, mono.breakdown.ufc);
  } else {
    // Deadline misses under load stale a round but not the fixed point.
    const double scale = std::abs(mono.breakdown.ufc);
    EXPECT_NEAR(fleet->breakdown.ufc, mono.breakdown.ufc, 0.01 * scale);
  }

  // Deterministic merge order: one metrics table per worker, by index.
  ASSERT_EQ(fleet->worker_metrics.size(), 2u);
  EXPECT_EQ(fleet->worker_metrics[0].worker_index, 0u);
  EXPECT_EQ(fleet->worker_metrics[1].worker_index, 1u);
  for (const auto& worker : fleet->worker_metrics) {
    const auto& counters = worker.tables.counters;
    const auto it = counters.find("rounds_processed");
    ASSERT_NE(it, counters.end());
    EXPECT_GT(it->second, 0u);
  }
}

TEST(Supervised, KilledWorkerDegradesToReducedProblemOptimum) {
  const auto problem = make_three_dc_problem();
  // processes=2 deals datacenters round-robin: worker 0 hosts {0, 2},
  // worker 1 hosts {1}. SIGKILL worker 1 after engine iteration 10.
  auto options = base_options();
  options.kill_at_round = 10;
  options.kill_worker = 1;
  const auto fleet = run_or_skip(problem, options);
  if (!fleet.has_value()) GTEST_SKIP() << "fork/socket unavailable";

  EXPECT_TRUE(fleet->converged);
  ASSERT_EQ(fleet->removed_datacenters, (std::vector<std::size_t>{1}));
  EXPECT_EQ(fleet->active_datacenters, (std::vector<std::size_t>{0, 2}));
  EXPECT_GE(fleet->workers_killed, 1u);

  // In-process crash-window equivalent: the process dies after iteration
  // 10, is never heard from again, and the EOF makes one silent round
  // enough to declare it dead.
  DistributedOptions dist;
  dist.admg = tight();
  dist.degraded = true;
  dist.max_attempts = 2;
  dist.dead_after_rounds = 1;
  dist.faults.crash(datacenter_id(1), {11, kForeverRound});
  DistributedAdmgRuntime runtime(problem, dist);
  const auto mono = runtime.run();
  ASSERT_EQ(mono.removed_datacenters, (std::vector<std::size_t>{1}));

  // Both paths must land on the reduced-problem optimum, independently
  // confirmed by the centralized oracle.
  const UfcProblem& reduced = runtime.current_problem();
  ASSERT_EQ(reduced.datacenters.size(), 2u);
  admm::CentralizedOptions central;
  central.max_iterations = 8000;
  const auto oracle = admm::solve_centralized(reduced, central);
  const double scale = std::abs(oracle.objective);
  EXPECT_NEAR(fleet->breakdown.ufc, oracle.objective, 0.01 * scale);
  EXPECT_NEAR(fleet->breakdown.ufc, mono.breakdown.ufc, 0.01 * scale);
}

TEST(Supervised, CheckpointCrashRestartResumesAndStaysFeasible) {
  const auto problem = make_three_dc_problem();
  auto options = base_options();
  options.checkpoint_at_round = 10;
  const auto first = run_or_skip(problem, options);
  if (!first.has_value()) GTEST_SKIP() << "fork/socket unavailable";
  ASSERT_TRUE(first->converged);
  ASSERT_FALSE(first->checkpoint_image.empty());

  // Crash-restart: a brand-new fleet restores the iteration-10 image and
  // finishes the solve.
  const auto resumed =
      Supervisor(problem, base_options()).run(first->checkpoint_image);
  EXPECT_TRUE(resumed.converged);
  EXPECT_LT(resumed.iterations, first->iterations);
  // Feasibility guard: the resumed plan still balances every front-end's
  // arrivals across the surviving datacenters.
  EXPECT_LT(resumed.balance_residual, 10.0 * tight().tolerance);
  const double scale = std::abs(first->breakdown.ufc);
  EXPECT_NEAR(resumed.breakdown.ufc, first->breakdown.ufc, 1e-6 * scale);
}

TEST(Supervised, ContractChecksRejectBadOptions) {
  const auto problem = make_tiny_problem();
  {
    auto options = base_options();
    options.distributed.degraded = false;  // a fleet can always lose a worker
    EXPECT_THROW(Supervisor(problem, options), ContractViolation);
  }
  {
    auto options = base_options();
    options.processes = 0;
    EXPECT_THROW(Supervisor(problem, options), ContractViolation);
  }
  {
    auto options = base_options();
    options.kill_at_round = 5;
    options.kill_worker = 7;  // out of range for processes = 2
    EXPECT_THROW(Supervisor(problem, options), ContractViolation);
  }
}

}  // namespace
}  // namespace ufc::net
