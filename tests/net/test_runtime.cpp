// The distributed runtime must reproduce the monolithic solver exactly:
// same iterates, same convergence, only message-passing in between.
#include <gtest/gtest.h>

#include "admm/admg.hpp"
#include "helpers.hpp"
#include "net/runtime.hpp"

namespace ufc::net {
namespace {

using ::ufc::testing::make_random_problem;
using ::ufc::testing::make_tiny_problem;

admm::AdmgOptions tight() {
  admm::AdmgOptions options;
  options.tolerance = 1e-6;
  options.max_iterations = 5000;
  return options;
}

TEST(DistributedRuntime, IteratesBitIdenticalToMonolithicSolver) {
  const auto problem = make_tiny_problem();
  const auto options = tight();

  admm::AdmgSolver solver(problem, options);
  DistributedOptions dist;
  dist.admg = options;
  DistributedAdmgRuntime runtime(problem, dist);

  for (int k = 0; k < 25; ++k) {
    solver.step();
    runtime.round(k);
    ASSERT_EQ(max_abs_diff(runtime.lambda(), solver.lambda()), 0.0)
        << "lambda diverged at iteration " << k;
    ASSERT_EQ(max_abs_diff(runtime.a(), solver.a()), 0.0);
    ASSERT_EQ(max_abs_diff(runtime.mu(), solver.mu()), 0.0);
    ASSERT_EQ(max_abs_diff(runtime.nu(), solver.nu()), 0.0);
  }
}

TEST(DistributedRuntime, RunMatchesMonolithicReport) {
  const auto problem = make_tiny_problem();
  const auto options = tight();
  const auto mono = admm::solve_admg(problem, options);

  DistributedOptions dist;
  dist.admg = options;
  const auto report = DistributedAdmgRuntime(problem, dist).run();
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.iterations, mono.iterations);
  EXPECT_LT(max_abs_diff(report.solution.lambda, mono.solution.lambda), 1e-9);
  EXPECT_NEAR(report.breakdown.ufc, mono.breakdown.ufc,
              1e-9 * std::abs(mono.breakdown.ufc));
}

TEST(DistributedRuntime, MessageCountMatchesProtocol) {
  // Per round: M*N proposals + M*N assignments + (M+N) reports.
  const auto problem = make_tiny_problem();  // M = 2, N = 2
  DistributedOptions dist;
  dist.admg = tight();
  DistributedAdmgRuntime runtime(problem, dist);
  runtime.round(0);
  EXPECT_EQ(runtime.bus().total().messages, 2u * 2u * 2u + 4u);
}

TEST(DistributedRuntime, MessageLossChangesNothingButRetransmissions) {
  const auto problem = make_tiny_problem();
  const auto options = tight();

  DistributedOptions clean;
  clean.admg = options;
  DistributedOptions lossy;
  lossy.admg = options;
  lossy.loss_rate = 0.3;
  lossy.loss_seed = 11;

  const auto clean_report = DistributedAdmgRuntime(problem, clean).run();
  const auto lossy_report = DistributedAdmgRuntime(problem, lossy).run();

  EXPECT_EQ(clean_report.iterations, lossy_report.iterations);
  EXPECT_LT(max_abs_diff(clean_report.solution.lambda,
                         lossy_report.solution.lambda),
            1e-12);
  EXPECT_EQ(clean_report.network.retransmissions, 0u);
  EXPECT_GT(lossy_report.network.retransmissions, 0u);
  EXPECT_GT(lossy_report.network.bytes, clean_report.network.bytes);
}

TEST(DistributedRuntime, StrategyPinningWorksOverTheWire) {
  const auto problem = make_tiny_problem();
  {
    DistributedOptions dist;
    dist.admg = tight();
    dist.admg.pinning = admm::BlockPinning::PinMu;
    const auto report = DistributedAdmgRuntime(problem, dist).run();
    EXPECT_TRUE(report.converged);
    for (double mu : report.solution.mu) EXPECT_NEAR(mu, 0.0, 1e-9);
  }
  {
    DistributedOptions dist;
    dist.admg = tight();
    dist.admg.pinning = admm::BlockPinning::PinNu;
    const auto report = DistributedAdmgRuntime(problem, dist).run();
    EXPECT_TRUE(report.converged);
    for (double nu : report.solution.nu) EXPECT_NEAR(nu, 0.0, 2e-4);
  }
}

class RuntimeRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RuntimeRandomized, AgreesWithMonolithicOnRandomInstances) {
  const auto problem = make_random_problem(GetParam() + 300, 4, 3);
  const auto options = tight();
  const auto mono = admm::solve_admg(problem, options);
  DistributedOptions dist;
  dist.admg = options;
  const auto report = DistributedAdmgRuntime(problem, dist).run();
  EXPECT_EQ(report.iterations, mono.iterations);
  EXPECT_LT(max_abs_diff(report.solution.lambda, mono.solution.lambda), 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuntimeRandomized,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace ufc::net
