#include <gtest/gtest.h>

#include "net/message.hpp"
#include "util/contract.hpp"

namespace ufc::net {
namespace {

TEST(NodeIds, RoundTripAndDisjointRanges) {
  const NodeId fe = front_end_id(7);
  const NodeId dc = datacenter_id(7);
  EXPECT_NE(fe, dc);
  EXPECT_TRUE(is_front_end(fe));
  EXPECT_FALSE(is_datacenter(fe));
  EXPECT_TRUE(is_datacenter(dc));
  EXPECT_FALSE(is_front_end(dc));
  EXPECT_EQ(front_end_index(fe), 7u);
  EXPECT_EQ(datacenter_index(dc), 7u);
}

TEST(NodeIds, CoordinatorIsNeither) {
  EXPECT_FALSE(is_front_end(kCoordinatorId));
  EXPECT_FALSE(is_datacenter(kCoordinatorId));
}

TEST(NodeIds, WrongKindExtractionThrows) {
  EXPECT_THROW(front_end_index(datacenter_id(0)), ContractViolation);
  EXPECT_THROW(datacenter_index(front_end_id(0)), ContractViolation);
}

TEST(Serialization, RoundTripsAllFields) {
  Message msg;
  msg.source = front_end_id(3);
  msg.destination = datacenter_id(1);
  msg.type = MessageType::RoutingProposal;
  msg.iteration = 42;
  msg.payload = {1.5, -2.25, 1e-9, 0.0};
  const auto wire = serialize(msg);
  EXPECT_EQ(wire.size(), wire_size(msg));
  const Message back = deserialize(wire);
  EXPECT_EQ(back, msg);
}

TEST(Serialization, EmptyPayload) {
  Message msg;
  msg.type = MessageType::ConvergenceReport;
  const Message back = deserialize(serialize(msg));
  EXPECT_EQ(back, msg);
  EXPECT_TRUE(back.payload.empty());
}

TEST(Serialization, TruncatedInputThrows) {
  Message msg;
  msg.payload = {1.0, 2.0};
  auto wire = serialize(msg);
  wire.pop_back();
  EXPECT_THROW(deserialize(wire), ContractViolation);
}

TEST(Serialization, TrailingGarbageThrows) {
  Message msg;
  msg.payload = {1.0};
  auto wire = serialize(msg);
  wire.push_back(std::byte{0});
  EXPECT_THROW(deserialize(wire), ContractViolation);
}

TEST(Serialization, InvalidTypeByteThrows) {
  Message msg;
  auto wire = serialize(msg);
  // Type byte sits after the two NodeIds.
  wire[sizeof(NodeId) * 2] = std::byte{99};
  EXPECT_THROW(deserialize(wire), ContractViolation);
}

TEST(WireSize, GrowsWithPayload) {
  Message small;
  Message big;
  big.payload = std::vector<double>(100, 1.0);
  EXPECT_EQ(wire_size(big), wire_size(small) + 100 * sizeof(double));
}

}  // namespace
}  // namespace ufc::net
