#include <gtest/gtest.h>

#include <cstddef>
#include <span>
#include <vector>

#include "net/message.hpp"
#include "util/contract.hpp"
#include "util/rng.hpp"

namespace ufc::net {
namespace {

TEST(NodeIds, RoundTripAndDisjointRanges) {
  const NodeId fe = front_end_id(7);
  const NodeId dc = datacenter_id(7);
  EXPECT_NE(fe, dc);
  EXPECT_TRUE(is_front_end(fe));
  EXPECT_FALSE(is_datacenter(fe));
  EXPECT_TRUE(is_datacenter(dc));
  EXPECT_FALSE(is_front_end(dc));
  EXPECT_EQ(front_end_index(fe), 7u);
  EXPECT_EQ(datacenter_index(dc), 7u);
}

TEST(NodeIds, CoordinatorIsNeither) {
  EXPECT_FALSE(is_front_end(kCoordinatorId));
  EXPECT_FALSE(is_datacenter(kCoordinatorId));
}

TEST(NodeIds, WrongKindExtractionThrows) {
  EXPECT_THROW(front_end_index(datacenter_id(0)), ContractViolation);
  EXPECT_THROW(datacenter_index(front_end_id(0)), ContractViolation);
}

TEST(Serialization, RoundTripsAllFields) {
  Message msg;
  msg.source = front_end_id(3);
  msg.destination = datacenter_id(1);
  msg.type = MessageType::RoutingProposal;
  msg.iteration = 42;
  msg.payload = {1.5, -2.25, 1e-9, 0.0};
  const auto wire = serialize(msg);
  EXPECT_EQ(wire.size(), wire_size(msg));
  const Message back = deserialize(wire);
  EXPECT_EQ(back, msg);
}

TEST(Serialization, EmptyPayload) {
  Message msg;
  msg.type = MessageType::ConvergenceReport;
  const Message back = deserialize(serialize(msg));
  EXPECT_EQ(back, msg);
  EXPECT_TRUE(back.payload.empty());
}

TEST(Serialization, TruncatedInputThrows) {
  Message msg;
  msg.payload = {1.0, 2.0};
  auto wire = serialize(msg);
  wire.pop_back();
  EXPECT_THROW(deserialize(wire), ContractViolation);
}

TEST(Serialization, TrailingGarbageThrows) {
  Message msg;
  msg.payload = {1.0};
  auto wire = serialize(msg);
  wire.push_back(std::byte{0});
  EXPECT_THROW(deserialize(wire), ContractViolation);
}

TEST(Serialization, InvalidTypeByteThrows) {
  Message msg;
  auto wire = serialize(msg);
  // Type byte sits after the two NodeIds.
  wire[sizeof(NodeId) * 2] = std::byte{99};
  EXPECT_THROW(deserialize(wire), ContractViolation);
}

// Seeded byte-mutation fuzzing over valid frames of every message kind:
// decoders must either throw ContractViolation or return a well-formed
// Message — never crash, hang, or read out of bounds. The CI sanitizer
// builds (ASan+UBSan) give this test its teeth.
Message make_fuzz_seed(MessageType type, std::size_t payload_len) {
  Message msg;
  msg.source = type == MessageType::RoutingAssignment ? datacenter_id(2)
                                                      : front_end_id(5);
  msg.destination = type == MessageType::RoutingProposal ? datacenter_id(1)
                    : type == MessageType::RoutingAssignment
                        ? front_end_id(0)
                        : kCoordinatorId;
  msg.type = type;
  msg.iteration = 17;
  msg.payload.resize(payload_len);
  for (std::size_t k = 0; k < payload_len; ++k)
    msg.payload[k] = static_cast<double>(k) * 0.5 - 1.0;
  return msg;
}

void fuzz_mutations(MessageType type, std::size_t payload_len,
                    std::uint64_t seed) {
  const auto wire = serialize(make_fuzz_seed(type, payload_len));
  Rng rng(seed);
  for (int trial = 0; trial < 2000; ++trial) {
    auto mutated = wire;
    const int flips = static_cast<int>(rng.uniform_int(1, 8));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<int>(mutated.size()) - 1));
      mutated[pos] ^= static_cast<std::byte>(rng.uniform_int(1, 255));
    }
    try {
      const Message decoded = deserialize(mutated);
      // A decode that survives mutation must still be internally
      // consistent: re-encoding reproduces the mutated frame.
      EXPECT_EQ(serialize(decoded), mutated);
    } catch (const ContractViolation&) {
      // Expected for most mutations; anything else is a bug.
    }
  }
}

TEST(SerializationFuzz, MutatedRoutingProposalFramesAreSafe) {
  fuzz_mutations(MessageType::RoutingProposal, 2, 101);
}

TEST(SerializationFuzz, MutatedRoutingAssignmentFramesAreSafe) {
  fuzz_mutations(MessageType::RoutingAssignment, 1, 202);
}

TEST(SerializationFuzz, MutatedConvergenceReportFramesAreSafe) {
  fuzz_mutations(MessageType::ConvergenceReport, 0, 303);
}

TEST(SerializationFuzz, MutatedStateSyncFramesAreSafe) {
  // 6 + 3m for m = 4: the multi-process shadow-sync payload.
  fuzz_mutations(MessageType::StateSync, 18, 404);
}

TEST(Serialization, StateSyncRoundTrips) {
  Message msg;
  msg.source = datacenter_id(2);
  msg.destination = kCoordinatorId;
  msg.type = MessageType::StateSync;
  msg.iteration = 9;
  msg.payload = {1.0, 2.0, 3.0, 0.5, 8.0, 4.0, 0.1, 0.2, 0.3};
  EXPECT_EQ(deserialize(serialize(msg)), msg);
}

TEST(SerializationFuzz, EveryPrefixTruncationThrows) {
  for (const auto type :
       {MessageType::RoutingProposal, MessageType::RoutingAssignment,
        MessageType::ConvergenceReport, MessageType::StateSync}) {
    const auto wire = serialize(make_fuzz_seed(type, 3));
    for (std::size_t len = 0; len < wire.size(); ++len) {
      const std::span<const std::byte> prefix{wire.data(), len};
      EXPECT_THROW(deserialize(prefix), ContractViolation);
    }
  }
}

TEST(SerializationFuzz, RandomByteStringsAreSafe) {
  Rng rng(404);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::byte> junk(
        static_cast<std::size_t>(rng.uniform_int(0, 96)));
    for (auto& b : junk)
      b = static_cast<std::byte>(rng.uniform_int(0, 255));
    try {
      const Message decoded = deserialize(junk);
      EXPECT_EQ(serialize(decoded), junk);
    } catch (const ContractViolation&) {
    }
  }
}

TEST(WireSize, GrowsWithPayload) {
  Message small;
  Message big;
  big.payload = std::vector<double>(100, 1.0);
  EXPECT_EQ(wire_size(big), wire_size(small) + 100 * sizeof(double));
}

}  // namespace
}  // namespace ufc::net
