// Socket transport tests: stream-framing fuzz (no sockets needed) and live
// hub/worker exchanges over Unix-domain and TCP-loopback sockets.
//
// The loopback tests run the worker side on a std::thread inside this
// process: the two SocketBus objects share nothing but the OS socket, which
// is exactly the cross-process topology, and keeps the suite TSan-clean.
// Environments without socket support skip gracefully.
#include <gtest/gtest.h>
#include <unistd.h>

#include <cstddef>
#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "net/socket_bus.hpp"
#include "util/clock.hpp"
#include "util/contract.hpp"
#include "util/rng.hpp"

namespace ufc::net {
namespace {

std::vector<std::byte> data_frame_bytes(std::size_t payload_len,
                                        std::int32_t iteration = 3) {
  Message msg;
  msg.source = front_end_id(1);
  msg.destination = datacenter_id(0);
  msg.type = MessageType::RoutingProposal;
  msg.iteration = iteration;
  msg.payload.resize(payload_len, 0.25);
  return encode_frame(FrameKind::Data, serialize(msg));
}

// ---------------------------------------------------------------------------
// Framing fuzz (satellite: >= 2000 trials per failure kind, no UB, no hang).

TEST(SocketFraming, FrameRoundTripsThroughReader) {
  const auto bytes = data_frame_bytes(4);
  FrameReader reader;
  reader.feed(bytes);
  const auto frame = reader.next();
  ASSERT_TRUE(frame.has_value());
  EXPECT_EQ(frame->kind, FrameKind::Data);
  const Message decoded = deserialize(frame->body);
  EXPECT_EQ(decoded.payload.size(), 4u);
  EXPECT_FALSE(reader.next().has_value());
  EXPECT_EQ(reader.buffered(), 0u);
}

TEST(SocketFraming, EveryTruncatedPrefixYieldsNoFrameAndNoThrow) {
  const auto bytes = data_frame_bytes(6);
  for (std::size_t len = 0; len < bytes.size(); ++len) {
    FrameReader reader;
    reader.feed({bytes.data(), len});
    if (len < 2 * sizeof(std::uint32_t)) {
      // Header incomplete: the reader must simply wait for more bytes.
      EXPECT_FALSE(reader.next().has_value());
    } else {
      // Header visible and valid, body truncated: also wait, never throw.
      EXPECT_FALSE(reader.next().has_value());
      EXPECT_EQ(reader.buffered(), len);
    }
  }
}

TEST(SocketFraming, OversizedDeclaredLengthRejectedBeforeBodyArrives) {
  Rng rng(11);
  for (int trial = 0; trial < 2000; ++trial) {
    const auto oversize = static_cast<std::uint32_t>(
        kMaxFrameBytes + 1 +
        static_cast<std::uint64_t>(rng.uniform_int(0, 1 << 30)));
    std::vector<std::byte> header;
    {
      // Hand-build the 8-byte header so the length can exceed what
      // encode_frame would ever produce.
      const auto kind = static_cast<std::uint32_t>(
          rng.uniform_int(1, 4));
      for (std::size_t b = 0; b < 4; ++b)
        header.push_back(static_cast<std::byte>((kind >> (8 * b)) & 0xFF));
      for (std::size_t b = 0; b < 4; ++b)
        header.push_back(
            static_cast<std::byte>((oversize >> (8 * b)) & 0xFF));
    }
    FrameReader reader;
    // Only the header is fed — the declared multi-gigabyte body never
    // arrives. The reader must reject NOW, before allocating for it.
    reader.feed(header);
    EXPECT_THROW(reader.next(), ContractViolation);
  }
}

TEST(SocketFraming, UnknownFrameKindsThrow) {
  Rng rng(22);
  for (int trial = 0; trial < 2000; ++trial) {
    auto kind = static_cast<std::uint32_t>(
        rng.uniform_int(0, 1) == 0
            ? rng.uniform_int(5, 1 << 24)
            : 0);
    std::vector<std::byte> header;
    for (std::size_t b = 0; b < 4; ++b)
      header.push_back(static_cast<std::byte>((kind >> (8 * b)) & 0xFF));
    for (std::size_t b = 0; b < 4; ++b) header.push_back(std::byte{0});
    FrameReader reader;
    reader.feed(header);
    EXPECT_THROW(reader.next(), ContractViolation);
  }
}

TEST(SocketFraming, PartialReadsAcrossArbitraryChunkBoundaries) {
  // Several messages of different sizes, delivered in random chunkings:
  // the reassembled frame stream must be identical every time.
  std::vector<std::byte> stream;
  std::vector<std::size_t> payload_lens = {0, 1, 7, 33, 2};
  for (std::size_t len : payload_lens) {
    const auto bytes = data_frame_bytes(len);
    stream.insert(stream.end(), bytes.begin(), bytes.end());
  }
  Rng rng(33);
  for (int trial = 0; trial < 2000; ++trial) {
    FrameReader reader;
    std::vector<std::size_t> seen;
    std::size_t offset = 0;
    while (offset < stream.size()) {
      const auto chunk = static_cast<std::size_t>(rng.uniform_int(
          1, static_cast<std::int64_t>(stream.size() - offset)));
      reader.feed({stream.data() + offset, chunk});
      offset += chunk;
      while (auto frame = reader.next())
        seen.push_back(deserialize(frame->body).payload.size());
    }
    EXPECT_EQ(seen, payload_lens);
    EXPECT_EQ(reader.buffered(), 0u);
  }
}

TEST(SocketFraming, InterleavedControlAndDataFrames) {
  // Hello / Data / Metrics / Shutdown interleaved on one stream, fed byte
  // by byte: kinds and bodies must come out exactly as encoded.
  Rng rng(44);
  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::byte> stream;
    std::vector<FrameKind> kinds;
    const int frames = static_cast<int>(rng.uniform_int(1, 6));
    for (int f = 0; f < frames; ++f) {
      const auto kind =
          static_cast<FrameKind>(rng.uniform_int(1, 4));
      kinds.push_back(kind);
      std::vector<std::byte> body(
          static_cast<std::size_t>(rng.uniform_int(0, 64)));
      for (auto& b : body)
        b = static_cast<std::byte>(rng.uniform_int(0, 255));
      const auto bytes = encode_frame(kind, body);
      stream.insert(stream.end(), bytes.begin(), bytes.end());
    }
    FrameReader reader;
    std::vector<FrameKind> seen;
    for (std::byte b : stream) {
      reader.feed({&b, 1});
      while (auto frame = reader.next()) seen.push_back(frame->kind);
    }
    EXPECT_EQ(seen, kinds);
  }
}

TEST(SocketFraming, HelloBodyRoundTripsAndRejectsMalformed) {
  const std::vector<NodeId> nodes = {datacenter_id(0), datacenter_id(3),
                                     kCoordinatorId};
  const auto body = encode_hello_body(7, nodes);
  const HelloBody back = decode_hello_body(body);
  EXPECT_EQ(back.worker_index, 7u);
  EXPECT_EQ(back.nodes, nodes);
  for (std::size_t len = 0; len < body.size(); ++len)
    EXPECT_THROW(decode_hello_body({body.data(), len}), ContractViolation);
}

TEST(SocketFraming, MetricsBodyRoundTripsAndSurvivesMutation) {
  const std::map<std::string, std::uint64_t> counters = {
      {"worker.rounds_processed", 41}, {"worker.net.bytes", 123456}};
  const std::map<std::string, double> gauges = {
      {"worker.uptime_seconds", 1.25}};
  const auto body = encode_metrics_body(counters, gauges);
  const MetricsBody back = decode_metrics_body(body);
  EXPECT_EQ(back.counters, counters);
  EXPECT_EQ(back.gauges, gauges);

  Rng rng(55);
  for (int trial = 0; trial < 2000; ++trial) {
    auto mutated = body;
    const int flips = static_cast<int>(rng.uniform_int(1, 8));
    for (int f = 0; f < flips; ++f) {
      const auto pos = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(mutated.size()) - 1));
      mutated[pos] ^= static_cast<std::byte>(rng.uniform_int(1, 255));
    }
    try {
      const MetricsBody decoded = decode_metrics_body(mutated);
      // Mutated keys may re-sort or collide in the maps, so byte-exact
      // re-encoding is not guaranteed — but the decode→encode→decode loop
      // must be a fixed point.
      const auto reencoded =
          encode_metrics_body(decoded.counters, decoded.gauges);
      const MetricsBody again = decode_metrics_body(reencoded);
      EXPECT_EQ(again.counters, decoded.counters);
      EXPECT_EQ(again.gauges, decoded.gauges);
    } catch (const ContractViolation&) {
      // Expected for most mutations.
    }
  }
}

TEST(SocketFraming, EncodeFrameRejectsOversizedBody) {
  const std::vector<std::byte> body(kMaxFrameBytes + 1);
  EXPECT_THROW(encode_frame(FrameKind::Data, body), ContractViolation);
}

// ---------------------------------------------------------------------------
// Live socket exchanges.

std::string unique_socket_path(const char* tag) {
  static int counter = 0;
  return "/tmp/ufc_test_" + std::string(tag) + "_" +
         std::to_string(::getpid()) + "_" + std::to_string(counter++) +
         ".sock";
}

SocketBusConfig hub_config(const SocketEndpoint& endpoint) {
  SocketBusConfig config;
  config.endpoint = endpoint;
  config.hub = true;
  config.local_nodes = {kCoordinatorId, front_end_id(0), front_end_id(1)};
  return config;
}

SocketBusConfig worker_config(const SocketEndpoint& endpoint) {
  SocketBusConfig config;
  config.endpoint = endpoint;
  config.hub = false;
  config.worker_index = 0;
  config.local_nodes = {datacenter_id(0)};
  return config;
}

/// Builds the hub or skips the test when the environment refuses sockets.
std::optional<SocketBus> try_make_hub(const SocketEndpoint& endpoint) {
  try {
    return std::optional<SocketBus>(std::in_place, hub_config(endpoint));
  } catch (const std::runtime_error& error) {
    return std::nullopt;
  }
}

Message proposal_to(NodeId destination, std::int32_t iteration) {
  Message msg;
  msg.source = front_end_id(0);
  msg.destination = destination;
  msg.type = MessageType::RoutingProposal;
  msg.iteration = iteration;
  msg.payload = {0.5, -1.5};
  return msg;
}

void exercise_round_trip(const SocketEndpoint& hub_endpoint) {
  auto hub = try_make_hub(hub_endpoint);
  if (!hub.has_value()) GTEST_SKIP() << "socket support unavailable";
  SocketEndpoint worker_endpoint = hub_endpoint;
  if (worker_endpoint.unix_path.empty())
    worker_endpoint.tcp_port = hub->bound_tcp_port();

  // The worker side runs on a thread; the two buses share only the socket.
  std::thread worker([worker_endpoint] {
    SocketBus bus(worker_config(worker_endpoint));
    ASSERT_TRUE(bus.connect_to_hub(4000));
    // Wait for the proposal, echo an assignment + a report back.
    ASSERT_GT(bus.poll_pending(datacenter_id(0), 4000), 0u);
    const auto messages = bus.drain(datacenter_id(0));
    ASSERT_EQ(messages.size(), 1u);
    EXPECT_EQ(messages[0].type, MessageType::RoutingProposal);
    EXPECT_EQ(messages[0].payload, (std::vector<double>{0.5, -1.5}));
    Message reply;
    reply.source = datacenter_id(0);
    reply.destination = front_end_id(0);
    reply.type = MessageType::RoutingAssignment;
    reply.iteration = messages[0].iteration;
    reply.payload = {0.75};
    EXPECT_EQ(bus.send(reply), SendOutcome::Delivered);
    Message report;
    report.source = datacenter_id(0);
    report.destination = kCoordinatorId;
    report.type = MessageType::ConvergenceReport;
    report.iteration = messages[0].iteration;
    report.payload = {1e-3};
    EXPECT_EQ(bus.send(report), SendOutcome::Delivered);
    // Stay alive until the hub says shutdown, then confirm with metrics.
    const IoDeadline deadline(4000);
    while (!bus.shutdown_requested() && !deadline.expired())
      bus.pump(deadline.remaining_ms());
    EXPECT_TRUE(bus.shutdown_requested());
    EXPECT_EQ(bus.send_metrics({{"worker.rounds_processed", 1}}, {}, 2000),
              SendOutcome::Delivered);
  });

  ASSERT_EQ(hub->wait_for_workers(1, 4000), 1u);
  hub->begin_round(3);
  EXPECT_EQ(hub->send(proposal_to(datacenter_id(0), 3)),
            SendOutcome::Delivered);
  // The assignment must land at the front-end, the report at the
  // coordinator — both via the real wire.
  ASSERT_GT(hub->poll_pending(front_end_id(0), 4000), 0u);
  const auto assignment = hub->receive(front_end_id(0));
  ASSERT_TRUE(assignment.has_value());
  EXPECT_EQ(assignment->type, MessageType::RoutingAssignment);
  EXPECT_EQ(assignment->payload, std::vector<double>{0.75});
  ASSERT_GT(hub->poll_pending(kCoordinatorId, 4000), 0u);
  EXPECT_EQ(hub->max_pending_iteration(kCoordinatorId), 3);
  const auto report = hub->receive(kCoordinatorId);
  ASSERT_TRUE(report.has_value());
  EXPECT_EQ(report->type, MessageType::ConvergenceReport);

  hub->send_shutdown(2000);
  const IoDeadline deadline(4000);
  while (hub->take_worker_metrics().empty() && !deadline.expired()) {
    hub->pump(deadline.remaining_ms());
    if (!hub->connected_workers()) break;
  }
  worker.join();
  EXPECT_GT(hub->total().messages, 0u);
  EXPECT_GT(hub->total().bytes, 0u);
}

TEST(SocketBusLive, UnixRoundTripAndShutdown) {
  SocketEndpoint endpoint;
  endpoint.unix_path = unique_socket_path("rt");
  exercise_round_trip(endpoint);
}

TEST(SocketBusLive, TcpLoopbackRoundTrip) {
  SocketEndpoint endpoint;  // unix_path empty = TCP, port 0 = ephemeral.
  exercise_round_trip(endpoint);
}

TEST(SocketBusLive, LocalShortCircuitNeverTouchesTheWire) {
  SocketEndpoint endpoint;
  endpoint.unix_path = unique_socket_path("local");
  auto hub = try_make_hub(endpoint);
  if (!hub.has_value()) GTEST_SKIP() << "socket support unavailable";
  const Message msg = proposal_to(front_end_id(1), 0);
  EXPECT_EQ(hub->send(msg), SendOutcome::Delivered);
  EXPECT_EQ(hub->pending(front_end_id(1)), 1u);
  const auto back = hub->receive(front_end_id(1));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, msg);
}

TEST(SocketBusLive, SendToUnknownNodeFailsInsteadOfHanging) {
  SocketEndpoint endpoint;
  endpoint.unix_path = unique_socket_path("unknown");
  auto hub = try_make_hub(endpoint);
  if (!hub.has_value()) GTEST_SKIP() << "socket support unavailable";
  // No worker ever announced datacenter 5: the send must fail fast.
  EXPECT_EQ(hub->send(proposal_to(datacenter_id(5), 0)),
            SendOutcome::Failed);
  EXPECT_EQ(hub->total().delivery_failures, 1u);
}

TEST(SocketBusLive, ConnectToAbsentHubFailsWithBackoffAccounting) {
  SocketEndpoint endpoint;
  endpoint.unix_path = unique_socket_path("absent");
  SocketBusConfig config = worker_config(endpoint);
  config.max_attempts = 3;
  config.connect_timeout_ms = 50;
  SocketBus bus(std::move(config));
  const util::MonotonicTimer timer;
  EXPECT_FALSE(bus.connect_to_hub(300));
  // Deadline-bounded: nowhere near a hang.
  EXPECT_LT(timer.elapsed_seconds(), 5.0);
  EXPECT_EQ(bus.total().retransmissions, 3u);
  // 2^0 + 2^1 between the three attempts (none after the last).
  EXPECT_EQ(bus.total().backoff_rounds, 3u);
  // And a send to a remote node surfaces Failed, not a hang.
  EXPECT_EQ(bus.send(proposal_to(kCoordinatorId, 0)), SendOutcome::Failed);
}

TEST(SocketBusLive, WorkerDeathSurfacesAsNewlyDisconnected) {
  SocketEndpoint endpoint;
  endpoint.unix_path = unique_socket_path("death");
  auto hub = try_make_hub(endpoint);
  if (!hub.has_value()) GTEST_SKIP() << "socket support unavailable";
  {
    SocketBus bus(worker_config(endpoint));
    ASSERT_TRUE(bus.connect_to_hub(4000));
    ASSERT_EQ(hub->wait_for_workers(1, 4000), 1u);
    // Destructor closes the stream: the OS-level death signal.
  }
  const IoDeadline deadline(4000);
  std::vector<NodeId> dead;
  while (dead.empty() && !deadline.expired()) {
    hub->pump(deadline.remaining_ms());
    dead = hub->take_newly_disconnected();
  }
  EXPECT_EQ(dead, std::vector<NodeId>{datacenter_id(0)});
  EXPECT_EQ(hub->connected_workers(), 0u);
}

TEST(SocketBusLive, PollPendingHonorsDeadlineWhenNothingArrives) {
  SocketEndpoint endpoint;
  endpoint.unix_path = unique_socket_path("deadline");
  auto hub = try_make_hub(endpoint);
  if (!hub.has_value()) GTEST_SKIP() << "socket support unavailable";
  const util::MonotonicTimer timer;
  EXPECT_EQ(hub->poll_pending(kCoordinatorId, 100), 0u);
  const double waited = timer.elapsed_seconds();
  EXPECT_GE(waited, 0.05);  // It did wait...
  EXPECT_LT(waited, 5.0);   // ...but returned promptly at the deadline.
}

TEST(SocketBusContract, UnboundedAttemptsAreRejected) {
  SocketEndpoint endpoint;
  endpoint.unix_path = unique_socket_path("contract");
  SocketBusConfig config = worker_config(endpoint);
  config.max_attempts = 0;  // Legal on the in-process bus, not on a socket.
  EXPECT_THROW(SocketBus{std::move(config)}, ContractViolation);
}

TEST(SocketBusContract, EmptyLocalNodesAreRejected) {
  SocketEndpoint endpoint;
  endpoint.unix_path = unique_socket_path("nodes");
  SocketBusConfig config = worker_config(endpoint);
  config.local_nodes.clear();
  EXPECT_THROW(SocketBus{std::move(config)}, ContractViolation);
}

}  // namespace
}  // namespace ufc::net
