#include <gtest/gtest.h>

#include <memory>

#include "net/agents.hpp"
#include "net/bus.hpp"
#include "util/contract.hpp"

namespace ufc::net {
namespace {

FrontEndLocalConfig make_fe_config() {
  FrontEndLocalConfig cfg;
  cfg.index = 0;
  cfg.arrival = 1.0;
  cfg.latency_row_s = Vec{0.01, 0.03};
  cfg.latency_weight = 10.0;
  cfg.utility = std::make_shared<QuadraticUtility>();
  return cfg;
}

DatacenterLocalConfig make_dc_config(std::size_t index = 0) {
  DatacenterLocalConfig cfg;
  cfg.index = index;
  cfg.num_front_ends = 1;
  cfg.alpha_mw = 0.12;
  cfg.beta_mw = 1.2e-4;
  cfg.capacity_servers = 2.0;
  cfg.fuel_cell_capacity_mw = 0.5;
  cfg.fuel_cell_price = 80.0;
  cfg.grid_price = 40.0;
  cfg.carbon_tons_per_mwh = 0.5;
  cfg.emission_cost = std::make_shared<AffineCarbonTax>(25.0);
  return cfg;
}

TEST(FrontEndAgent, SendsOneProposalPerDatacenter) {
  MessageBus bus;
  FrontEndAgent agent(make_fe_config());
  agent.send_proposals(bus, 0);
  EXPECT_EQ(bus.pending(datacenter_id(0)), 1u);
  EXPECT_EQ(bus.pending(datacenter_id(1)), 1u);

  const auto msg = bus.receive(datacenter_id(0));
  ASSERT_TRUE(msg.has_value());
  EXPECT_EQ(msg->type, MessageType::RoutingProposal);
  EXPECT_EQ(msg->iteration, 0);
  ASSERT_EQ(msg->payload.size(), 2u);  // lambda~ and varphi
}

TEST(FrontEndAgent, FirstProposalRoutesNearestUnderColdStart) {
  // With a = varphi = 0, the lambda sub-problem reduces to pure utility:
  // everything to the nearest (10 ms) datacenter plus the rho/2 ||lambda||^2
  // proximal term, which spreads slightly; nearest must still dominate.
  MessageBus bus;
  FrontEndAgent agent(make_fe_config());
  agent.send_proposals(bus, 0);
  const auto to_near = bus.receive(datacenter_id(0));
  const auto to_far = bus.receive(datacenter_id(1));
  ASSERT_TRUE(to_near && to_far);
  EXPECT_GT(to_near->payload[0], to_far->payload[0]);
  EXPECT_NEAR(to_near->payload[0] + to_far->payload[0], 1.0, 1e-8);
}

TEST(FrontEndAgent, MissingAssignmentThrows) {
  MessageBus bus;
  FrontEndAgent agent(make_fe_config());
  agent.send_proposals(bus, 0);
  bus.drain(datacenter_id(0));
  bus.drain(datacenter_id(1));
  // Only one of the two expected assignments arrives.
  Message reply;
  reply.source = datacenter_id(0);
  reply.destination = agent.id();
  reply.type = MessageType::RoutingAssignment;
  reply.iteration = 0;
  reply.payload = {0.5};
  bus.send(reply);
  EXPECT_THROW(agent.process_assignments(bus, 0), ContractViolation);
}

TEST(FrontEndAgent, StaleIterationThrows) {
  MessageBus bus;
  FrontEndAgent agent(make_fe_config());
  agent.send_proposals(bus, 3);
  Message reply;
  reply.source = datacenter_id(0);
  reply.destination = agent.id();
  reply.type = MessageType::RoutingAssignment;
  reply.iteration = 2;  // stale
  reply.payload = {0.5};
  bus.send(reply);
  Message reply2 = reply;
  reply2.source = datacenter_id(1);
  bus.send(reply2);
  EXPECT_THROW(agent.process_assignments(bus, 3), ContractViolation);
}

TEST(DatacenterAgent, RepliesToEveryFrontEndAndReportsResidual) {
  MessageBus bus;
  DatacenterAgent dc(make_dc_config());
  Message proposal;
  proposal.source = front_end_id(0);
  proposal.destination = dc.id();
  proposal.type = MessageType::RoutingProposal;
  proposal.iteration = 0;
  proposal.payload = {1.0, 0.0};
  bus.send(proposal);

  dc.process_proposals(bus, 0);
  EXPECT_EQ(bus.pending(front_end_id(0)), 1u);
  EXPECT_EQ(bus.pending(kCoordinatorId), 1u);
  EXPECT_GE(dc.last_balance_residual(), 0.0);
}

TEST(DatacenterAgent, MissingProposalThrows) {
  MessageBus bus;
  auto cfg = make_dc_config();
  cfg.num_front_ends = 2;
  DatacenterAgent dc(cfg);
  Message proposal;
  proposal.source = front_end_id(0);
  proposal.destination = dc.id();
  proposal.type = MessageType::RoutingProposal;
  proposal.iteration = 0;
  proposal.payload = {1.0, 0.0};
  bus.send(proposal);  // second front-end never reports
  EXPECT_THROW(dc.process_proposals(bus, 0), ContractViolation);
}

TEST(DatacenterAgent, ConflictingPinningThrows) {
  auto cfg = make_dc_config();
  cfg.protocol.pin_mu = true;
  cfg.protocol.pin_nu = true;
  EXPECT_THROW(DatacenterAgent{cfg}, ContractViolation);
}

TEST(Agents, NullFunctionPointersThrow) {
  auto fe = make_fe_config();
  fe.utility = nullptr;
  EXPECT_THROW(FrontEndAgent{fe}, ContractViolation);

  auto dc = make_dc_config();
  dc.emission_cost = nullptr;
  EXPECT_THROW(DatacenterAgent{dc}, ContractViolation);
}

}  // namespace
}  // namespace ufc::net
