// Degraded-mode distributed ADM-G under injected faults: the zero-fault
// path is pinned bit-for-bit against the pre-fault-framework runtime, and
// the fault paths are cross-checked against the centralized oracle on the
// (possibly reduced) problem the runtime actually solved.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <memory>
#include <vector>

#include "admm/admg.hpp"
#include "admm/centralized.hpp"
#include "helpers.hpp"
#include "net/runtime.hpp"
#include "util/contract.hpp"

namespace ufc::net {
namespace {

using ::ufc::testing::make_tiny_problem;

admm::AdmgOptions tight() {
  admm::AdmgOptions options;
  options.tolerance = 1e-6;
  options.max_iterations = 5000;
  return options;
}

/// Tiny problem plus a third datacenter large enough that any single
/// datacenter can be removed and the remaining capacity (>= 1700 servers)
/// still covers the 1000 arrivals — graceful degradation stays feasible.
UfcProblem make_three_dc_problem() {
  UfcProblem p = make_tiny_problem();
  DatacenterSpec third;
  third.name = "backup";
  third.servers = 900.0;
  third.pue = 1.3;
  third.grid_price = 60.0;
  third.carbon_rate = 500.0;
  third.fuel_cell_capacity_mw = 200.0 * 900.0 * 1.3 / 1e6;
  third.emission_cost = std::make_shared<AffineCarbonTax>(25.0);
  p.datacenters.push_back(std::move(third));
  Mat latency(2, 3);
  latency(0, 0) = 0.010;
  latency(0, 1) = 0.030;
  latency(0, 2) = 0.025;
  latency(1, 0) = 0.040;
  latency(1, 1) = 0.015;
  latency(1, 2) = 0.020;
  p.latency_s = latency;
  return p;
}

// Pinned pre-fault-framework baseline for make_tiny_problem with tight()
// options. The entire robustness layer (fault clock, stale caches, health
// table, watchdog) must be invisible on the zero-fault path: these hexfloat
// values were captured from the runtime BEFORE the fault framework existed,
// and any drift here is a behavioral regression, not a tolerance issue.
TEST(DegradedRuntime, ZeroFaultRunIsPinnedBitIdenticalToPreFaultBaseline) {
  DistributedOptions dist;
  dist.admg = tight();
  const auto report = DistributedAdmgRuntime(make_tiny_problem(), dist).run();

  EXPECT_EQ(report.iterations, 63);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.balance_residual, 0x1.0adeea4008f5cp-20);
  EXPECT_EQ(report.copy_residual, 0x1.9be13c3p-25);
  EXPECT_EQ(report.network.messages, 756u);
  EXPECT_EQ(report.network.bytes, 20916u);
  EXPECT_EQ(report.network.retransmissions, 0u);
  EXPECT_EQ(report.network.delivery_failures, 0u);
  EXPECT_EQ(report.solution.lambda(0, 0), 0x1.2cp+9);   // 600 servers
  EXPECT_EQ(report.solution.lambda(0, 1), 0x0p+0);
  EXPECT_EQ(report.solution.lambda(1, 0), 0x0p+0);
  EXPECT_EQ(report.solution.lambda(1, 1), 0x1.9p+8);    // 400 servers
  EXPECT_EQ(report.solution.mu[0], 0x1.aa66147ae147ap-41);
  EXPECT_EQ(report.solution.nu[0], 0x1.89374bc6a146p-3);
  EXPECT_EQ(report.solution.mu[1], 0x1.26e8f34c4d13bp-3);
  EXPECT_EQ(report.solution.nu[1], 0x1.0b1161c02p-20);
  EXPECT_EQ(report.breakdown.ufc, -0x1.69eb961294562p+4);
  EXPECT_EQ(report.watchdog_verdict, admm::WatchdogVerdict::Healthy);
  EXPECT_FALSE(report.fallback_centralized);
  EXPECT_EQ(report.stale_inputs, 0u);
}

TEST(DegradedRuntime, DegradedModeWithZeroFaultPlanMatchesStrictBitwise) {
  const auto problem = make_three_dc_problem();
  DistributedOptions strict;
  strict.admg = tight();
  DistributedOptions degraded = strict;
  degraded.degraded = true;

  const auto a = DistributedAdmgRuntime(problem, strict).run();
  const auto b = DistributedAdmgRuntime(problem, degraded).run();

  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(max_abs_diff(a.solution.lambda, b.solution.lambda), 0.0);
  EXPECT_EQ(max_abs_diff(a.solution.mu, b.solution.mu), 0.0);
  EXPECT_EQ(max_abs_diff(a.solution.nu, b.solution.nu), 0.0);
  EXPECT_EQ(a.breakdown.ufc, b.breakdown.ufc);
  EXPECT_EQ(b.stale_inputs, 0u);
  EXPECT_EQ(b.removed_datacenters.size(), 0u);
}

TEST(DegradedRuntime, ConvergesUnderLossCorruptionAndDelay) {
  const auto problem = make_three_dc_problem();
  const auto mono = admm::solve_admg(problem, tight());

  DistributedOptions dist;
  dist.admg = tight();
  dist.degraded = true;
  dist.max_attempts = 4;
  dist.faults.random_faults({.loss_rate = 0.15,
                             .corruption_rate = 0.05,
                             .delay_rate = 0.15,
                             .max_delay_rounds = 2});
  const auto report = DistributedAdmgRuntime(problem, dist).run();

  EXPECT_TRUE(report.converged);
  EXPECT_GT(report.stale_inputs, 0u);
  EXPECT_EQ(report.removed_datacenters.size(), 0u);
  // Stale rounds change the trajectory, not the fixed point.
  const double scale = std::abs(mono.breakdown.ufc);
  EXPECT_NEAR(report.breakdown.ufc, mono.breakdown.ufc, 0.01 * scale);
  // Faults inflate traffic and typically iterations relative to clean runs.
  EXPECT_GT(report.network.retransmissions + report.network.delayed +
                report.network.corrupted,
            0u);
}

TEST(DegradedRuntime, DatacenterCrashDegradesToReducedProblemOptimum) {
  const auto problem = make_three_dc_problem();
  DistributedOptions dist;
  dist.admg = tight();
  dist.degraded = true;
  dist.max_attempts = 2;
  dist.dead_after_rounds = 5;
  dist.faults.crash(datacenter_id(0), {10, kForeverRound});

  DistributedAdmgRuntime runtime(problem, dist);
  const auto report = runtime.run();

  ASSERT_EQ(report.removed_datacenters, (std::vector<std::size_t>{0}));
  ASSERT_EQ(report.active_datacenters, (std::vector<std::size_t>{1, 2}));
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.watchdog_verdict, admm::WatchdogVerdict::Healthy);
  EXPECT_GT(report.network.delivery_failures, 0u);

  // The surviving system must land on the optimum of the *reduced* problem,
  // independently verified by the centralized oracle.
  const UfcProblem& reduced = runtime.current_problem();
  ASSERT_EQ(reduced.datacenters.size(), 2u);
  EXPECT_EQ(reduced.datacenters[0].name, "pricey-clean");
  EXPECT_EQ(reduced.datacenters[1].name, "backup");
  admm::CentralizedOptions central;
  central.max_iterations = 8000;
  const auto oracle = admm::solve_centralized(reduced, central);
  const double scale = std::abs(oracle.objective);
  EXPECT_NEAR(report.breakdown.ufc, oracle.objective, 0.01 * scale);
}

TEST(DegradedRuntime, FrontEndCrashRestartRecovers) {
  const auto problem = make_three_dc_problem();
  const auto mono = admm::solve_admg(problem, tight());

  DistributedOptions dist;
  dist.admg = tight();
  dist.degraded = true;
  dist.max_attempts = 2;
  dist.faults.crash(front_end_id(0), {5, 12});
  const auto report = DistributedAdmgRuntime(problem, dist).run();

  EXPECT_TRUE(report.converged);
  EXPECT_GT(report.stale_inputs, 0u);
  // A transient front-end outage must not cost a datacenter its membership.
  EXPECT_EQ(report.removed_datacenters.size(), 0u);
  const double scale = std::abs(mono.breakdown.ufc);
  EXPECT_NEAR(report.breakdown.ufc, mono.breakdown.ufc, 0.01 * scale);
}

TEST(DegradedRuntime, CheckpointRestoreResumesBitIdentically) {
  const auto problem = make_three_dc_problem();

  DistributedOptions full;
  full.admg = tight();
  const auto uninterrupted = DistributedAdmgRuntime(problem, full).run();

  DistributedOptions first_leg = full;
  first_leg.admg.max_iterations = 10;
  DistributedAdmgRuntime paused(problem, first_leg);
  const auto partial = paused.run();
  ASSERT_FALSE(partial.converged);
  ASSERT_EQ(partial.iterations, 10);
  const auto image = paused.checkpoint();

  DistributedAdmgRuntime resumed(problem, full);
  resumed.restore(image);
  EXPECT_EQ(resumed.next_round(), 10);
  const auto rest = resumed.run();

  EXPECT_TRUE(rest.converged);
  EXPECT_EQ(rest.iterations + partial.iterations, uninterrupted.iterations);
  EXPECT_EQ(max_abs_diff(rest.solution.lambda, uninterrupted.solution.lambda),
            0.0);
  EXPECT_EQ(max_abs_diff(rest.solution.mu, uninterrupted.solution.mu), 0.0);
  EXPECT_EQ(max_abs_diff(rest.solution.nu, uninterrupted.solution.nu), 0.0);
  EXPECT_EQ(rest.breakdown.ufc, uninterrupted.breakdown.ufc);
  EXPECT_EQ(rest.balance_residual, uninterrupted.balance_residual);
  EXPECT_EQ(rest.copy_residual, uninterrupted.copy_residual);
}

TEST(DegradedRuntime, CheckpointSurvivesMembershipChange) {
  const auto problem = make_three_dc_problem();
  DistributedOptions dist;
  dist.admg = tight();
  dist.degraded = true;
  dist.max_attempts = 2;
  dist.dead_after_rounds = 5;
  dist.faults.crash(datacenter_id(0), {0, kForeverRound});

  DistributedOptions first_leg = dist;
  first_leg.admg.max_iterations = 40;  // enough rounds to remove the dead DC
  DistributedAdmgRuntime paused(problem, first_leg);
  (void)paused.run();
  ASSERT_EQ(paused.removed_datacenters().size(), 1u);
  const auto image = paused.checkpoint();

  DistributedAdmgRuntime resumed(problem, dist);
  resumed.restore(image);
  EXPECT_EQ(resumed.active_datacenters(),
            (std::vector<std::size_t>{1, 2}));
  const auto report = resumed.run();
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.active_datacenters, (std::vector<std::size_t>{1, 2}));
}

TEST(DegradedRuntime, RestoreRejectsMalformedImages) {
  const auto problem = make_three_dc_problem();
  DistributedOptions dist;
  dist.admg = tight();
  DistributedAdmgRuntime source(problem, dist);
  const auto image = source.checkpoint();

  {
    DistributedAdmgRuntime target(problem, dist);
    auto truncated = image;
    truncated.pop_back();
    EXPECT_THROW(target.restore(truncated), ContractViolation);
  }
  {
    DistributedAdmgRuntime target(problem, dist);
    auto mutated = image;
    mutated[0] ^= std::byte{0xFF};  // breaks the magic
    EXPECT_THROW(target.restore(mutated), ContractViolation);
  }
  {
    // A checkpoint of a different problem shape must be rejected.
    DistributedAdmgRuntime other(make_tiny_problem(), dist);
    EXPECT_THROW(other.restore(image), ContractViolation);
  }
}

TEST(DegradedRuntime, WatchdogStallTriggersCentralizedFallback) {
  const auto problem = make_three_dc_problem();
  DistributedOptions dist;
  dist.admg = tight();
  dist.admg.watchdog.stall_window = 40;
  dist.admg.fallback_to_centralized = true;
  dist.degraded = true;
  dist.max_attempts = 2;
  // Permanently partition every front-end from datacenter 0 while its link
  // to the coordinator stays up: never declared dead, never fresh — the run
  // cannot converge and must be cut short by the stall watchdog.
  dist.faults.partition(front_end_id(0), datacenter_id(0), {0, kForeverRound});
  dist.faults.partition(front_end_id(1), datacenter_id(0), {0, kForeverRound});

  const auto report = DistributedAdmgRuntime(problem, dist).run();

  EXPECT_FALSE(report.converged);
  EXPECT_EQ(report.watchdog_verdict, admm::WatchdogVerdict::Stalled);
  EXPECT_TRUE(report.fallback_centralized);
  EXPECT_EQ(report.removed_datacenters.size(), 0u);
  EXPECT_LT(report.iterations, tight().max_iterations);
  // The fallback plan is the centralized solution of the full problem.
  admm::CentralizedOptions central;
  central.max_iterations = 8000;
  const auto oracle = admm::solve_centralized(problem, central);
  const double scale = std::abs(oracle.objective);
  EXPECT_NEAR(report.breakdown.ufc, oracle.objective, 0.01 * scale);
  EXPECT_TRUE(std::isfinite(report.breakdown.ufc));
}

TEST(DegradedRuntime, StrictModeRejectsFaultPlansAndAttemptCaps) {
  const auto problem = make_tiny_problem();
  {
    DistributedOptions dist;
    dist.faults.crash(datacenter_id(0), {0, 5});
    EXPECT_THROW(DistributedAdmgRuntime(problem, dist), ContractViolation);
  }
  {
    DistributedOptions dist;
    dist.max_attempts = 3;
    EXPECT_THROW(DistributedAdmgRuntime(problem, dist), ContractViolation);
  }
  {
    // Loss alone is delivery-preserving: allowed in strict mode.
    DistributedOptions dist;
    dist.faults.random_faults({.loss_rate = 0.2});
    EXPECT_NO_THROW(DistributedAdmgRuntime(problem, dist));
  }
}

}  // namespace
}  // namespace ufc::net
