#include <gtest/gtest.h>

#include "net/bus.hpp"
#include "util/contract.hpp"

namespace ufc::net {
namespace {

Message make_message(NodeId src, NodeId dst, double value) {
  Message msg;
  msg.source = src;
  msg.destination = dst;
  msg.type = MessageType::RoutingProposal;
  msg.payload = {value};
  return msg;
}

TEST(MessageBus, DeliversFifoPerDestination) {
  MessageBus bus;
  bus.send(make_message(front_end_id(0), datacenter_id(0), 1.0));
  bus.send(make_message(front_end_id(1), datacenter_id(0), 2.0));
  bus.send(make_message(front_end_id(0), datacenter_id(1), 3.0));

  EXPECT_EQ(bus.pending(datacenter_id(0)), 2u);
  auto first = bus.receive(datacenter_id(0));
  ASSERT_TRUE(first.has_value());
  EXPECT_DOUBLE_EQ(first->payload[0], 1.0);
  auto second = bus.receive(datacenter_id(0));
  ASSERT_TRUE(second.has_value());
  EXPECT_DOUBLE_EQ(second->payload[0], 2.0);
  EXPECT_FALSE(bus.receive(datacenter_id(0)).has_value());
  EXPECT_EQ(bus.pending(datacenter_id(1)), 1u);
}

TEST(MessageBus, DrainEmptiesQueue) {
  MessageBus bus;
  for (int k = 0; k < 5; ++k)
    bus.send(make_message(front_end_id(k), datacenter_id(2), k));
  const auto all = bus.drain(datacenter_id(2));
  EXPECT_EQ(all.size(), 5u);
  EXPECT_EQ(bus.pending(datacenter_id(2)), 0u);
  EXPECT_TRUE(bus.drain(datacenter_id(2)).empty());
}

TEST(MessageBus, CountsMessagesAndBytes) {
  MessageBus bus;
  const auto msg = make_message(front_end_id(0), datacenter_id(0), 1.0);
  bus.send(msg);
  bus.send(msg);
  EXPECT_EQ(bus.total().messages, 2u);
  EXPECT_EQ(bus.total().bytes, 2 * wire_size(msg));
  EXPECT_EQ(bus.total().retransmissions, 0u);
  const auto link = bus.link(front_end_id(0), datacenter_id(0));
  EXPECT_EQ(link.messages, 2u);
  EXPECT_EQ(bus.link(front_end_id(9), datacenter_id(0)).messages, 0u);
}

TEST(MessageBus, LossInjectionRetransmitsButAlwaysDelivers) {
  MessageBus bus(0.5, 99);
  const auto msg = make_message(front_end_id(0), datacenter_id(0), 7.0);
  for (int k = 0; k < 200; ++k) bus.send(msg);
  // Every message arrives despite 50% per-attempt loss.
  EXPECT_EQ(bus.pending(datacenter_id(0)), 200u);
  EXPECT_EQ(bus.total().messages, 200u);
  // Expected ~200 retransmissions at 50% loss; allow a broad band.
  EXPECT_GT(bus.total().retransmissions, 100u);
  EXPECT_LT(bus.total().retransmissions, 400u);
  // Bytes include the dropped attempts.
  EXPECT_EQ(bus.total().bytes,
            (200 + bus.total().retransmissions) * wire_size(msg));
}

TEST(MessageBus, LossIsDeterministicPerSeed) {
  MessageBus a(0.3, 7), b(0.3, 7);
  const auto msg = make_message(front_end_id(0), datacenter_id(0), 1.0);
  for (int k = 0; k < 100; ++k) {
    a.send(msg);
    b.send(msg);
  }
  EXPECT_EQ(a.total().retransmissions, b.total().retransmissions);
}

TEST(MessageBus, PayloadSurvivesWireCodec) {
  MessageBus bus;
  Message msg = make_message(front_end_id(4), datacenter_id(3), 0.0);
  msg.payload = {1e-300, -1e300, 3.141592653589793};
  bus.send(msg);
  const auto received = bus.receive(datacenter_id(3));
  ASSERT_TRUE(received.has_value());
  EXPECT_EQ(received->payload, msg.payload);
}

TEST(MessageBus, ResetStatsClearsCounters) {
  MessageBus bus;
  bus.send(make_message(front_end_id(0), datacenter_id(0), 1.0));
  bus.reset_stats();
  EXPECT_EQ(bus.total().messages, 0u);
  EXPECT_EQ(bus.link(front_end_id(0), datacenter_id(0)).messages, 0u);
}

TEST(MessageBus, InvalidLossRateThrows) {
  EXPECT_THROW(MessageBus(-0.1), ContractViolation);
  EXPECT_THROW(MessageBus(1.0), ContractViolation);
}

}  // namespace
}  // namespace ufc::net
