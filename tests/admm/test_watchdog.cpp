// SolverWatchdog verdict semantics, AdmgSolver checkpoint/restore, and the
// watchdog-triggered centralized fallback of the monolithic solver.
#include <gtest/gtest.h>

#include <cmath>
#include <cstddef>
#include <cstring>
#include <limits>
#include <vector>

#include "admm/admg.hpp"
#include "admm/watchdog.hpp"
#include "helpers.hpp"
#include "math/matrix.hpp"
#include "util/contract.hpp"

namespace ufc::admm {
namespace {

using ::ufc::testing::make_tiny_problem;

TEST(SolverWatchdog, HealthyWhileResidualsImprove) {
  WatchdogOptions options;
  options.stall_window = 3;
  SolverWatchdog dog(options);
  double r = 1.0;
  for (int k = 0; k < 20; ++k) {
    EXPECT_EQ(dog.observe(r, r, true), WatchdogVerdict::Healthy);
    r *= 0.5;
  }
  EXPECT_FALSE(dog.tripped());
  EXPECT_EQ(dog.observations(), 20);
}

TEST(SolverWatchdog, NonFiniteTripsImmediatelyAndSticks) {
  SolverWatchdog dog;
  EXPECT_EQ(dog.observe(1.0, 1.0, true), WatchdogVerdict::Healthy);
  EXPECT_EQ(dog.observe(std::numeric_limits<double>::quiet_NaN(), 1.0, true),
            WatchdogVerdict::NonFinite);
  // Sticky: healthy observations cannot un-trip it.
  EXPECT_EQ(dog.observe(0.1, 0.1, true), WatchdogVerdict::NonFinite);
  EXPECT_TRUE(dog.tripped());
}

TEST(SolverWatchdog, CallerFinitenessFlagTrips) {
  SolverWatchdog dog;
  EXPECT_EQ(dog.observe(1.0, 1.0, false), WatchdogVerdict::NonFinite);
}

TEST(SolverWatchdog, StallWindowCountsConsecutiveNonImprovement) {
  WatchdogOptions options;
  options.stall_window = 3;
  options.min_decrease = 0.01;
  SolverWatchdog dog(options);
  EXPECT_EQ(dog.observe(1.0, 1.0, true), WatchdogVerdict::Healthy);
  // Two flat observations: still under the window.
  EXPECT_EQ(dog.observe(1.0, 1.0, true), WatchdogVerdict::Healthy);
  EXPECT_EQ(dog.observe(1.0, 1.0, true), WatchdogVerdict::Healthy);
  // A real improvement (> 1% of best) resets the stall counter.
  EXPECT_EQ(dog.observe(0.5, 0.5, true), WatchdogVerdict::Healthy);
  EXPECT_EQ(dog.observe(0.5, 0.5, true), WatchdogVerdict::Healthy);
  EXPECT_EQ(dog.observe(0.5, 0.5, true), WatchdogVerdict::Healthy);
  // Third consecutive non-improving observation fills the window.
  EXPECT_EQ(dog.observe(0.5, 0.5, true), WatchdogVerdict::Stalled);
  EXPECT_TRUE(dog.tripped());
}

TEST(SolverWatchdog, SubMinDecreaseImprovementStillStalls) {
  WatchdogOptions options;
  options.stall_window = 2;
  options.min_decrease = 0.1;
  SolverWatchdog dog(options);
  EXPECT_EQ(dog.observe(1.0, 1.0, true), WatchdogVerdict::Healthy);
  // 1% improvements are below the 10% min_decrease: they count as stalled.
  EXPECT_EQ(dog.observe(0.99, 0.99, true), WatchdogVerdict::Healthy);
  EXPECT_EQ(dog.observe(0.98, 0.98, true), WatchdogVerdict::Stalled);
}

TEST(SolverWatchdog, ZeroWindowDisablesStallDetection) {
  SolverWatchdog dog;  // default stall_window = 0
  for (int k = 0; k < 1000; ++k)
    EXPECT_EQ(dog.observe(1.0, 1.0, true), WatchdogVerdict::Healthy);
}

TEST(SolverWatchdog, ResetForgetsVerdictAndBest) {
  WatchdogOptions options;
  options.stall_window = 1;
  SolverWatchdog dog(options);
  dog.observe(1.0, 1.0, true);
  EXPECT_EQ(dog.observe(1.0, 1.0, true), WatchdogVerdict::Stalled);
  dog.reset();
  EXPECT_FALSE(dog.tripped());
  EXPECT_EQ(dog.observations(), 0);
  EXPECT_EQ(dog.best_residual(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(dog.observe(5.0, 5.0, true), WatchdogVerdict::Healthy);
}

TEST(AdmgCheckpoint, RestoreResumesBitIdentically) {
  const auto problem = make_tiny_problem();
  AdmgOptions options;
  options.tolerance = 1e-6;
  options.max_iterations = 5000;

  AdmgSolver uninterrupted(problem, options);
  const auto full = uninterrupted.solve();

  AdmgSolver paused(problem, options);
  for (int k = 0; k < 10; ++k) paused.step();
  const auto image = paused.checkpoint();

  AdmgSolver resumed(problem, options);
  resumed.restore(image);
  EXPECT_EQ(max_abs_diff(resumed.lambda(), paused.lambda()), 0.0);
  EXPECT_EQ(max_abs_diff(resumed.varphi(), paused.varphi()), 0.0);
  EXPECT_EQ(resumed.last_change(), paused.last_change());

  const auto rest = resumed.solve_warm();
  EXPECT_TRUE(rest.converged);
  EXPECT_EQ(rest.iterations + 10, full.iterations);
  EXPECT_EQ(max_abs_diff(rest.solution.lambda, full.solution.lambda), 0.0);
  EXPECT_EQ(max_abs_diff(rest.solution.mu, full.solution.mu), 0.0);
  EXPECT_EQ(max_abs_diff(rest.solution.nu, full.solution.nu), 0.0);
  EXPECT_EQ(rest.breakdown.ufc, full.breakdown.ufc);
}

TEST(AdmgCheckpoint, RejectsMalformedImages) {
  const auto problem = make_tiny_problem();
  AdmgSolver source(problem);
  source.step();
  const auto image = source.checkpoint();

  {
    AdmgSolver target(problem);
    auto truncated = image;
    truncated.pop_back();
    EXPECT_THROW(target.restore(truncated), ContractViolation);
  }
  {
    AdmgSolver target(problem);
    auto mutated = image;
    mutated[0] ^= std::byte{0xFF};  // breaks the magic
    EXPECT_THROW(target.restore(mutated), ContractViolation);
  }
  {
    AdmgSolver target(problem);
    auto trailing = image;
    trailing.push_back(std::byte{0});
    EXPECT_THROW(target.restore(trailing), ContractViolation);
  }
  {
    // Wrong dimensions: a 4x3 solver cannot load a 2x2 image.
    AdmgSolver other(::ufc::testing::make_random_problem(7, 4, 3));
    EXPECT_THROW(other.restore(image), ContractViolation);
  }
}

TEST(AdmgWatchdog, PoisonedRestoreIsCaughtAndFallsBackToCentralized) {
  const auto problem = make_tiny_problem();
  AdmgOptions options;
  options.tolerance = 1e-6;
  options.fallback_to_centralized = true;

  AdmgSolver victim(problem, options);
  for (int k = 0; k < 5; ++k) victim.step();
  // Corrupt one lambda entry in the checkpoint image with NaN — the framing
  // is intact, so restore() accepts it; only the watchdog can catch it.
  auto image = victim.checkpoint();
  const double poison = std::numeric_limits<double>::quiet_NaN();
  // Layout: magic u32, version u32, m u64, n u64, sigma f64, last_change
  // f64, stepped u8, then lambda row-major.
  const std::size_t lambda_offset = 4 + 4 + 8 + 8 + 8 + 8 + 1;
  std::memcpy(image.data() + lambda_offset, &poison, sizeof(poison));
  victim.restore(image);
  EXPECT_FALSE(victim.iterate_finite());

  const auto report = victim.solve_warm();
  EXPECT_EQ(report.watchdog_verdict, WatchdogVerdict::NonFinite);
  EXPECT_TRUE(report.fallback_centralized);
  EXPECT_FALSE(report.converged);
  // The fallback plan is trustworthy: finite and near the oracle optimum.
  EXPECT_TRUE(std::isfinite(report.breakdown.ufc));
  const auto healthy = solve_admg(problem, options);
  EXPECT_NEAR(report.breakdown.ufc, healthy.breakdown.ufc,
              0.01 * std::abs(healthy.breakdown.ufc));
}

TEST(AdmgWatchdog, HealthyRunIsUnaffectedByStallDetection) {
  const auto problem = make_tiny_problem();
  AdmgOptions plain;
  plain.tolerance = 1e-6;
  AdmgOptions watched = plain;
  // Wider than the whole run: ADMM residuals oscillate, so a window at the
  // oscillation scale would fire on a healthy trajectory (see WatchdogOptions).
  watched.watchdog.stall_window = 100;

  const auto a = solve_admg(problem, plain);
  const auto b = solve_admg(problem, watched);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(max_abs_diff(a.solution.lambda, b.solution.lambda), 0.0);
  EXPECT_EQ(a.breakdown.ufc, b.breakdown.ufc);
  EXPECT_EQ(b.watchdog_verdict, WatchdogVerdict::Healthy);
}

}  // namespace
}  // namespace ufc::admm
