// Streaming problem mutation and budgeted resume: the solver seams the
// receding-horizon controller (src/ctrl) is built on.
//
// Three behaviors are pinned here because each hid a real bug:
//  1. apply_update validates the whole batch before committing anything and
//     invalidates every cache describing the pre-update problem — a stale
//     screening support after a price mutation silently converges to the
//     wrong optimum.
//  2. A fuel-cell capacity shrinking below the warm mu_j routes the iterate
//     through the clamp_iterate feasibility projection (whose mu/nu bounds
//     were once swapped — see ClampProjectsMuToCapacityAndNuToZero).
//  3. solve_budgeted never touches the per-step state, so N budgeted calls
//     of k iterations are bit-identical to one (N*k)-iteration solve_warm —
//     the identity that makes per-tick deadlines a scheduling concern, not
//     a numerics concern.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

#include "admm/admg.hpp"
#include "admm/engine.hpp"
#include "admm/options.hpp"
#include "admm/solve_core.hpp"
#include "helpers.hpp"
#include "util/contract.hpp"

namespace ufc::admm {
namespace {

using ::ufc::testing::make_random_problem;
using ::ufc::testing::make_tiny_problem;

TEST(ProblemUpdateTest, EmptyDetectsAnyPopulatedBatch) {
  ProblemUpdate update;
  EXPECT_TRUE(update.empty());
  update.carbon_rates.emplace_back(0, 100.0);
  EXPECT_FALSE(update.empty());
}

TEST(ProblemUpdateTest, RejectsMalformedEntriesWithoutCommitting) {
  AdmgSolver solver(make_tiny_problem());
  const double price_before = solver.problem().datacenters[0].grid_price;

  ProblemUpdate bad_index;
  bad_index.grid_prices.emplace_back(5, 40.0);  // Only 2 datacenters.
  EXPECT_THROW(solver.apply_update(bad_index), ContractViolation);

  ProblemUpdate bad_arrival_index;
  bad_arrival_index.arrivals.emplace_back(2, 100.0);  // Only 2 front-ends.
  EXPECT_THROW(solver.apply_update(bad_arrival_index), ContractViolation);

  ProblemUpdate nan_value;
  nan_value.grid_prices.emplace_back(0, std::nan(""));
  EXPECT_THROW(solver.apply_update(nan_value), ContractViolation);

  ProblemUpdate inf_value;
  inf_value.arrivals.emplace_back(0, std::numeric_limits<double>::infinity());
  EXPECT_THROW(solver.apply_update(inf_value), ContractViolation);

  ProblemUpdate negative;
  negative.fuel_cell_caps.emplace_back(0, -0.1);
  EXPECT_THROW(solver.apply_update(negative), ContractViolation);

  // Aggregate infeasibility: arrivals beyond total server capacity (1800).
  ProblemUpdate overload;
  overload.arrivals.emplace_back(0, 5000.0);
  EXPECT_THROW(solver.apply_update(overload), ContractViolation);

  // A batch with one bad entry must not half-apply its good entries.
  ProblemUpdate mixed;
  mixed.grid_prices.emplace_back(0, 55.0);
  mixed.carbon_rates.emplace_back(9, 100.0);
  EXPECT_THROW(solver.apply_update(mixed), ContractViolation);
  EXPECT_EQ(solver.problem().datacenters[0].grid_price, price_before);
}

TEST(ProblemUpdateTest, CommitsSparseEntriesWithNormalization) {
  AdmgSolver solver(make_tiny_problem());
  const double sigma = solver.workload_scale();

  ProblemUpdate update;
  update.arrivals.emplace_back(1, 500.0);
  update.grid_prices.emplace_back(0, 45.0);
  update.carbon_rates.emplace_back(1, 300.0);
  update.fuel_cell_caps.emplace_back(0, 0.2);
  solver.apply_update(update);

  // The live (normalized) problem carries arrivals / sigma; prices, carbon
  // rates and capacities are MW/$ quantities invariant under normalization.
  EXPECT_DOUBLE_EQ(solver.problem().arrivals[1], 500.0 / sigma);
  EXPECT_DOUBLE_EQ(solver.problem().datacenters[0].grid_price, 45.0);
  EXPECT_DOUBLE_EQ(solver.problem().datacenters[1].carbon_rate, 300.0);
  EXPECT_DOUBLE_EQ(solver.problem().datacenters[0].fuel_cell_capacity_mw, 0.2);
  // Untouched entries stay put.
  EXPECT_DOUBLE_EQ(solver.problem().arrivals[0], 600.0 / sigma);
  EXPECT_DOUBLE_EQ(solver.problem().datacenters[1].grid_price, 90.0);
}

// Regression pin for the swapped-bounds bug: an earlier clamp_iterate applied
// the fuel-cell capacity bound to nu (grid draw, unbounded above) and left mu
// with only the nonnegativity clamp, so a capacity shrink never actually
// projected the warm dispatch back into the box.
TEST(ProblemUpdateTest, ClampProjectsMuToCapacityAndNuToZero) {
  const UfcProblem problem = make_tiny_problem();
  InProcessExecutor exec(problem, AdmgOptions{});
  const std::size_t m = problem.num_front_ends();
  const std::size_t n = problem.num_datacenters();
  const std::size_t mn = m * n;
  ASSERT_EQ(exec.iterate_size(), 3 * mn + 3 * n);

  // Stacking: lambda (mn), a (mn), varphi (mn), mu (n), nu (n), phi (n).
  std::vector<double> flat(exec.iterate_size(), 0.0);
  flat[0] = -2.0;                     // lambda: clamped to 0.
  flat[mn] = -3.0;                    // a: clamped to 0.
  flat[2 * mn] = -4.0;                // varphi: dual, untouched.
  flat[3 * mn + 0] = 100.0;           // mu_0 far above capacity.
  flat[3 * mn + 1] = 0.01;            // mu_1 inside the box.
  flat[3 * mn + n + 0] = -5.0;        // nu_0 negative grid draw.
  flat[3 * mn + n + 1] = 75.0;        // nu_1: large but legal grid draw.
  flat[3 * mn + 2 * n] = -6.0;        // phi: dual, untouched.
  exec.clamp_iterate(flat);

  EXPECT_EQ(flat[0], 0.0);
  EXPECT_EQ(flat[mn], 0.0);
  EXPECT_EQ(flat[2 * mn], -4.0);
  EXPECT_EQ(flat[3 * mn + 0],
            problem.datacenters[0].fuel_cell_capacity_mw);
  EXPECT_EQ(flat[3 * mn + 1], 0.01);
  EXPECT_EQ(flat[3 * mn + n + 0], 0.0);
  // The other half of the regression: grid draw must NOT be truncated at the
  // fuel-cell capacity (0.24 MW here).
  EXPECT_EQ(flat[3 * mn + n + 1], 75.0);
  EXPECT_EQ(flat[3 * mn + 2 * n], -6.0);
}

// The warm-start bugfix this PR exists for: shrink a fuel-cell capacity
// below the converged dispatch mid-stream and the warm iterate must be
// repaired through the feasibility projection at apply_update time — before
// the next step consumes it — landing mu_j exactly on the new bound.
TEST(ProblemUpdateTest, CapacityShrinkRepairsWarmIterate) {
  AdmgOptions options;
  options.record_trace = false;
  AdmgSolver solver(make_tiny_problem(), options);
  ASSERT_TRUE(solver.solve().converged);
  // The pricey-clean datacenter (grid 90 > fuel cell 80) dispatches its
  // fuel cell at the optimum; the shrink below that dispatch is what makes
  // the warm iterate infeasible.
  const double mu_before = solver.mu()[1];
  ASSERT_GT(mu_before, 1e-6);

  const double new_cap = 0.5 * mu_before;
  ProblemUpdate shrink;
  shrink.fuel_cell_caps.emplace_back(1, new_cap);
  solver.apply_update(shrink);

  // Repaired immediately (no step has run): clamped from above lands
  // bitwise on the new capacity, and the whole iterate is back in the box.
  EXPECT_EQ(solver.mu()[1], new_cap);
  for (std::size_t j = 0; j < solver.problem().num_datacenters(); ++j) {
    EXPECT_GE(solver.mu()[j], 0.0);
    EXPECT_LE(solver.mu()[j],
              solver.problem().datacenters[j].fuel_cell_capacity_mw);
    EXPECT_GE(solver.nu()[j], 0.0);
  }

  // The repaired warm start must carry a healthy re-solve: converged, still
  // within the shrunken capacity, and matching a cold solve of the mutated
  // problem.
  const AdmgReport warm = solver.solve_warm();
  ASSERT_TRUE(warm.converged);
  // The GBS correction interpolates across blocks, so the converged iterate
  // may sit O(tolerance) outside the box; what must never happen again is a
  // dispatch at the OLD capacity (2x the new one) surviving the re-solve.
  EXPECT_LE(solver.mu()[1], new_cap * (1.0 + 1e-2));

  UfcProblem mutated = make_tiny_problem();
  mutated.datacenters[1].fuel_cell_capacity_mw = new_cap;
  const AdmgReport cold = solve_admg(mutated, options);
  ASSERT_TRUE(cold.converged);
  EXPECT_NEAR(warm.breakdown.ufc, cold.breakdown.ufc,
              1e-3 * std::abs(cold.breakdown.ufc));
}

// Applying an update changes the iterate by AT MOST the feasibility
// projection: primal entries are clamped into the (possibly unchanged) box
// and duals are bit-untouched. The converged iterate can carry O(tolerance)
// GBS-correction negatives, so the repair legitimately fires even without a
// capacity shrink — but it must never move a feasible coordinate.
TEST(ProblemUpdateTest, UpdateRepairIsExactlyTheFeasibilityProjection) {
  AdmgOptions options;
  options.record_trace = false;
  AdmgSolver solver(make_tiny_problem(), options);
  ASSERT_TRUE(solver.solve().converged);
  const Mat lambda_before = solver.lambda();
  const Mat varphi_before = solver.varphi();
  const Vec mu_before = solver.mu();
  const Vec nu_before = solver.nu();
  const Vec phi_before = solver.phi();

  ProblemUpdate update;
  update.grid_prices.emplace_back(0, 35.0);
  update.carbon_rates.emplace_back(1, 400.0);
  solver.apply_update(update);

  for (std::size_t i = 0; i < lambda_before.rows(); ++i) {
    for (std::size_t j = 0; j < lambda_before.cols(); ++j) {
      EXPECT_EQ(solver.lambda()(i, j), std::max(0.0, lambda_before(i, j)));
      EXPECT_EQ(solver.varphi()(i, j), varphi_before(i, j));
    }
  }
  for (std::size_t j = 0; j < mu_before.size(); ++j) {
    const double cap = solver.problem().datacenters[j].fuel_cell_capacity_mw;
    EXPECT_EQ(solver.mu()[j], std::clamp(mu_before[j], 0.0, cap));
    EXPECT_EQ(solver.nu()[j], std::max(0.0, nu_before[j]));
    EXPECT_EQ(solver.phi()[j], phi_before[j]);
  }
}

// Satellite 1 regression: with active-set screening enabled, a mid-stream
// price mutation must invalidate the screened support and the certification
// gate. Before the fix the solver kept iterating on the stale support and
// certified convergence against the old problem's optimum.
TEST(ProblemUpdateTest, ScreenedWarmSolveMatchesColdUnscreenedAfterMutation) {
  const UfcProblem problem = make_random_problem(17, 6, 4);

  AdmgOptions screened;
  screened.screening.enabled = true;
  screened.record_trace = false;
  AdmgSolver solver(problem, screened);
  ASSERT_TRUE(solver.solve().converged);

  // Invert the price order: the screened-out coordinates of the old optimum
  // are exactly the ones the new optimum routes to.
  ProblemUpdate repricing;
  for (std::size_t j = 0; j < problem.num_datacenters(); ++j) {
    repricing.grid_prices.emplace_back(
        j, j % 2 == 0 ? 140.0 : 12.0);
    repricing.carbon_rates.emplace_back(j, j % 2 == 0 ? 900.0 : 120.0);
  }
  solver.apply_update(repricing);
  const AdmgReport warm = solver.solve_warm();
  ASSERT_TRUE(warm.converged);

  UfcProblem mutated = problem;
  for (const auto& [j, price] : repricing.grid_prices)
    mutated.datacenters[j].grid_price = price;
  for (const auto& [j, rate] : repricing.carbon_rates)
    mutated.datacenters[j].carbon_rate = rate;
  AdmgOptions unscreened;
  unscreened.record_trace = false;
  const AdmgReport cold = solve_admg(mutated, unscreened);
  ASSERT_TRUE(cold.converged);

  EXPECT_NEAR(warm.breakdown.ufc, cold.breakdown.ufc,
              1e-3 * std::abs(cold.breakdown.ufc));
  EXPECT_NEAR(warm.breakdown.fuel_cell_mwh, cold.breakdown.fuel_cell_mwh,
              1e-3 * std::max(1.0, cold.breakdown.fuel_cell_mwh));
}

/// Budget options: a tolerance far below reach so every run spends its full
/// iteration allowance, making trajectories comparable step for step.
AdmgOptions never_converge_options() {
  AdmgOptions options;
  options.tolerance = 1e-12;
  options.record_trace = false;
  options.warn_on_unconverged = false;
  return options;
}

TEST(AdmgBudget, ResumeBitIdenticalToOneLongSolve) {
  const UfcProblem problem = make_random_problem(5, 5, 3);
  constexpr int kChunks = 8;
  constexpr int kBudget = 5;

  AdmgOptions options = never_converge_options();
  options.max_iterations = kChunks * kBudget;
  AdmgSolver one_shot(problem, options);
  const AdmgReport long_report = one_shot.solve();
  EXPECT_EQ(long_report.iterations, kChunks * kBudget);
  EXPECT_EQ(long_report.status, SolveStatus::BudgetExhausted);

  AdmgSolver chunked(problem, never_converge_options());
  for (int chunk = 0; chunk < kChunks; ++chunk) {
    const AdmgReport report = chunked.solve_budgeted(kBudget);
    EXPECT_EQ(report.iterations, kBudget);
    EXPECT_EQ(report.status, SolveStatus::BudgetExhausted);
  }

  // The checkpoint serializes the complete iterate (primal, dual, last
  // change), so byte equality is bit-identity of the full solver state.
  EXPECT_EQ(one_shot.checkpoint(), chunked.checkpoint());
}

TEST(AdmgBudget, ResumeBitIdenticalUnderThreads) {
  const UfcProblem problem = make_random_problem(11, 8, 4);
  constexpr int kChunks = 6;
  constexpr int kBudget = 7;

  AdmgOptions options = never_converge_options();
  options.threads = 4;
  options.max_iterations = kChunks * kBudget;
  AdmgSolver one_shot(problem, options);
  one_shot.solve();

  AdmgOptions chunked_options = never_converge_options();
  chunked_options.threads = 4;
  AdmgSolver chunked(problem, chunked_options);
  for (int chunk = 0; chunk < kChunks; ++chunk)
    chunked.solve_budgeted(kBudget);

  EXPECT_EQ(one_shot.checkpoint(), chunked.checkpoint());
}

TEST(AdmgBudget, ConvergedBudgetedSolveReportsConverged) {
  AdmgOptions options;
  options.record_trace = false;
  AdmgSolver solver(make_tiny_problem(), options);
  // A generous single budget converges and says so through the status.
  const AdmgReport report = solver.solve_budgeted(2000);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.status, SolveStatus::Converged);
  EXPECT_LT(report.iterations, 2000);

  // A tiny budget on a fresh solver runs out and reports best-so-far.
  AdmgSolver fresh(make_tiny_problem(), options);
  const AdmgReport exhausted = fresh.solve_budgeted(2);
  EXPECT_FALSE(exhausted.converged);
  EXPECT_EQ(exhausted.status, SolveStatus::BudgetExhausted);
  EXPECT_EQ(exhausted.iterations, 2);
  EXPECT_STREQ(to_string(exhausted.status), "budget_exhausted");
}

TEST(AdmgBudget, RejectsNonPositiveBudget) {
  AdmgSolver solver(make_tiny_problem());
  EXPECT_THROW(solver.solve_budgeted(0), ContractViolation);
  EXPECT_THROW(solver.solve_budgeted(-3), ContractViolation);
}

}  // namespace
}  // namespace ufc::admm
