// Per-block sub-problem correctness: each block minimizer is checked against
// brute force and/or the first-order fixed-point condition on randomized
// inputs.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "admm/blocks.hpp"
#include "math/projections.hpp"
#include "model/emission.hpp"
#include "model/utility.hpp"
#include "opt/kkt.hpp"
#include "util/rng.hpp"

namespace ufc::admm {
namespace {

InnerSolverOptions tight_inner() {
  InnerSolverOptions options;
  options.fista.tolerance = 1e-12;
  options.fista.max_iterations = 5000;
  return options;
}

double lambda_block_objective(const LambdaBlockInputs& in, const Vec& lambda) {
  double weighted = 0.0;
  for (std::size_t j = 0; j < lambda.size(); ++j)
    weighted += lambda[j] * in.latency_row[j];
  const double avg_latency = weighted / in.arrival;
  double obj = -in.latency_weight * in.arrival * in.utility->value(avg_latency);
  for (std::size_t j = 0; j < lambda.size(); ++j)
    obj += -in.varphi_row[j] * lambda[j] +
           0.5 * in.rho * (in.a_row[j] - lambda[j]) * (in.a_row[j] - lambda[j]);
  return obj;
}

TEST(LambdaBlock, TwoDatacenterBruteForce) {
  QuadraticUtility utility;
  // Named storage: the input spans are non-owning views.
  const Vec latency{0.010, 0.030}, a_row{0.4, 0.6}, varphi_row{0.02, -0.05};
  LambdaBlockInputs in;
  in.arrival = 1.0;
  in.latency_row = latency.span();
  in.a_row = a_row.span();
  in.varphi_row = varphi_row.span();
  in.rho = 1.0;
  in.latency_weight = 10.0;
  in.utility = &utility;

  const Vec solution = solve_lambda_block(in, Vec{0.5, 0.5}, tight_inner());
  EXPECT_NEAR(solution[0] + solution[1], 1.0, 1e-9);

  double best = 1e100, best_x = 0.0;
  for (int k = 0; k <= 100000; ++k) {
    const double x = k / 100000.0;
    const double v = lambda_block_objective(in, Vec{x, 1.0 - x});
    if (v < best) {
      best = v;
      best_x = x;
    }
  }
  EXPECT_NEAR(solution[0], best_x, 1e-4);
  EXPECT_LE(lambda_block_objective(in, solution), best + 1e-9);
}

TEST(LambdaBlock, ZeroArrivalReturnsZeros) {
  QuadraticUtility utility;
  const Vec latency{0.01, 0.02}, a_row{0.0, 0.0}, varphi_row{0.0, 0.0};
  LambdaBlockInputs in;
  in.arrival = 0.0;
  in.latency_row = latency.span();
  in.a_row = a_row.span();
  in.varphi_row = varphi_row.span();
  in.utility = &utility;
  const Vec solution = solve_lambda_block(in, Vec{0.0, 0.0}, tight_inner());
  EXPECT_DOUBLE_EQ(solution[0], 0.0);
  EXPECT_DOUBLE_EQ(solution[1], 0.0);
}

class LambdaBlockProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LambdaBlockProperty, SatisfiesFirstOrderConditions) {
  Rng rng(GetParam());
  QuadraticUtility utility;
  const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 4));
  Vec latency(n), a_row(n), varphi_row(n);
  for (std::size_t j = 0; j < n; ++j) {
    latency[j] = rng.uniform(0.002, 0.05);
    a_row[j] = rng.uniform(0.0, 1.0);
    varphi_row[j] = rng.uniform(-0.5, 0.5);
  }
  LambdaBlockInputs in;
  in.arrival = rng.uniform(0.2, 3.0);
  in.latency_row = latency.span();
  in.a_row = a_row.span();
  in.varphi_row = varphi_row.span();
  in.rho = rng.uniform(0.1, 20.0);
  in.latency_weight = 10.0;
  in.utility = &utility;

  const Vec solution = solve_lambda_block(in, Vec(n, 0.0), tight_inner());

  auto gradient = [&](const Vec& lambda) {
    const double avg_latency = dot(lambda, latency) / in.arrival;
    const double uprime = utility.derivative(avg_latency);
    Vec g(n);
    for (std::size_t j = 0; j < n; ++j)
      g[j] = -in.latency_weight * uprime * in.latency_row[j] -
             in.varphi_row[j] - in.rho * (in.a_row[j] - lambda[j]);
    return g;
  };
  auto project = [&](const Vec& x) { return project_simplex(x, in.arrival); };
  const auto check = check_first_order_optimality(solution, gradient, project,
                                                  1e-7, 1e-6, in.arrival);
  EXPECT_TRUE(check.passed) << "residual " << check.residual;
}

INSTANTIATE_TEST_SUITE_P(Seeds, LambdaBlockProperty,
                         ::testing::Range<std::uint64_t>(1, 17));

TEST(MuBlock, InteriorOptimum) {
  MuBlockInputs in;
  in.alpha = 1.0;
  in.beta = 0.5;
  in.a_col_sum = 2.0;  // c = 1 + 1 - 0.5 = 1.5
  in.nu = 0.5;
  in.phi = 0.2;
  in.rho = 2.0;
  in.fuel_cell_price = 0.4;
  in.mu_max = 10.0;
  // mu* = c + (phi - p0)/rho = 1.5 + (0.2 - 0.4)/2 = 1.4.
  EXPECT_NEAR(solve_mu_block(in), 1.4, 1e-12);
}

TEST(MuBlock, ClampsAtZeroAndCapacity) {
  MuBlockInputs in;
  in.alpha = 0.1;
  in.beta = 0.0;
  in.a_col_sum = 0.0;
  in.nu = 0.0;
  in.rho = 1.0;
  in.mu_max = 0.5;

  in.phi = -100.0;  // pushes mu* far negative
  in.fuel_cell_price = 1.0;
  EXPECT_DOUBLE_EQ(solve_mu_block(in), 0.0);

  in.phi = +100.0;  // pushes mu* far above capacity
  EXPECT_DOUBLE_EQ(solve_mu_block(in), 0.5);
}

class MuBlockProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MuBlockProperty, MatchesGoldenSectionOnRandomInputs) {
  Rng rng(GetParam() + 50);
  MuBlockInputs in;
  in.alpha = rng.uniform(0.0, 2.0);
  in.beta = rng.uniform(0.0, 1.0);
  in.a_col_sum = rng.uniform(0.0, 3.0);
  in.nu = rng.uniform(0.0, 2.0);
  in.phi = rng.uniform(-5.0, 5.0);
  in.rho = rng.uniform(0.1, 10.0);
  in.fuel_cell_price = rng.uniform(0.0, 3.0);
  in.mu_max = rng.uniform(0.1, 4.0);

  const double mu = solve_mu_block(in);
  EXPECT_GE(mu, 0.0);
  EXPECT_LE(mu, in.mu_max);

  auto objective = [&](double m) {
    const double c = in.alpha + in.beta * in.a_col_sum - in.nu;
    return (in.fuel_cell_price - in.phi) * m + 0.5 * in.rho * (c - m) * (c - m);
  };
  // Grid search confirms optimality.
  double best = objective(mu);
  for (int k = 0; k <= 2000; ++k) {
    const double m = in.mu_max * k / 2000.0;
    EXPECT_GE(objective(m), best - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MuBlockProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

TEST(NuBlock, AffineTaxClosedFormAgreement) {
  AffineCarbonTax tax(25.0);
  NuBlockInputs in;
  in.alpha = 1.0;
  in.beta = 0.2;
  in.a_col_sum = 5.0;  // c = 1 + 1 - mu
  in.mu = 0.5;
  in.phi = 0.3;
  in.rho = 2.0;
  in.grid_price = 40.0;
  in.carbon_tons_per_mwh = 0.5;
  in.emission_cost = &tax;
  // c = 1.5; nu* = c - (kappa*r + p - phi)/rho = 1.5 - (12.5 + 40 - 0.3)/2.
  const double expected = std::max(0.0, 1.5 - (12.5 + 40.0 - 0.3) / 2.0);
  EXPECT_NEAR(solve_nu_block(in), expected, 1e-9);
}

TEST(NuBlock, LargePhiGivesInteriorSolution) {
  AffineCarbonTax tax(10.0);
  NuBlockInputs in;
  in.alpha = 2.0;
  in.beta = 0.0;
  in.a_col_sum = 0.0;
  in.mu = 0.0;
  in.phi = 50.0;
  in.rho = 4.0;
  in.grid_price = 30.0;
  in.carbon_tons_per_mwh = 0.2;
  in.emission_cost = &tax;
  // nu* = c + (phi - p - kappa r)/rho = 2 + (50 - 30 - 2)/4 = 6.5.
  EXPECT_NEAR(solve_nu_block(in), 6.5, 1e-8);
}

class NuBlockProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NuBlockProperty, OptimalForEveryEmissionPolicy) {
  Rng rng(GetParam() + 99);
  // Try all four policy families on the same random sub-problem.
  const AffineCarbonTax affine(rng.uniform(0.0, 60.0));
  const CapAndTradeCost cap(rng.uniform(0.0, 1.0), rng.uniform(0.0, 80.0));
  const SteppedCarbonTax stepped({0.2, 0.6}, {5.0, 20.0, 60.0});
  const QuadraticEmissionCost quadratic(rng.uniform(0.0, 30.0),
                                        rng.uniform(0.0, 10.0));
  const EmissionCostFunction* policies[] = {&affine, &cap, &stepped,
                                            &quadratic};

  NuBlockInputs in;
  in.alpha = rng.uniform(0.0, 2.0);
  in.beta = rng.uniform(0.0, 0.5);
  in.a_col_sum = rng.uniform(0.0, 4.0);
  in.mu = rng.uniform(0.0, 1.0);
  in.phi = rng.uniform(-20.0, 60.0);
  in.rho = rng.uniform(0.5, 10.0);
  in.grid_price = rng.uniform(5.0, 100.0);
  in.carbon_tons_per_mwh = rng.uniform(0.1, 1.0);

  for (const auto* policy : policies) {
    in.emission_cost = policy;
    const double nu = solve_nu_block(in);
    EXPECT_GE(nu, 0.0);

    auto objective = [&](double v) {
      const double c = in.alpha + in.beta * in.a_col_sum - in.mu;
      return policy->value(in.carbon_tons_per_mwh * v) +
             (in.grid_price - in.phi) * v + 0.5 * in.rho * (c - v) * (c - v);
    };
    const double f_star = objective(nu);
    // Dense scan over a generous range confirms global optimality.
    for (int k = 0; k <= 3000; ++k) {
      const double v = 20.0 * k / 3000.0;
      EXPECT_GE(objective(v), f_star - 1e-6)
          << "policy " << policy->name() << " nu* " << nu << " beaten at " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NuBlockProperty,
                         ::testing::Range<std::uint64_t>(1, 13));

double a_block_objective(const ABlockInputs& in, const Vec& a) {
  double a_sum = 0.0;
  for (double x : a) a_sum += x;
  const double balance = in.alpha + in.beta * a_sum - in.mu - in.nu;
  double obj = in.phi * in.beta * a_sum + 0.5 * in.rho * balance * balance;
  for (std::size_t i = 0; i < a.size(); ++i)
    obj += in.varphi_col[i] * a[i] +
           0.5 * in.rho * (a[i] - in.lambda_col[i]) * (a[i] - in.lambda_col[i]);
  return obj;
}

class ABlockProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ABlockProperty, SatisfiesFirstOrderConditions) {
  Rng rng(GetParam() + 7);
  const std::size_t m = 2 + static_cast<std::size_t>(rng.uniform_int(0, 6));
  Vec varphi_col(m), lambda_col(m);
  for (std::size_t i = 0; i < m; ++i) {
    varphi_col[i] = rng.uniform(-1.0, 1.0);
    lambda_col[i] = rng.uniform(0.0, 1.0);
  }
  ABlockInputs in;
  in.alpha = rng.uniform(0.0, 2.0);
  in.beta = rng.uniform(0.0, 1.0);
  in.mu = rng.uniform(0.0, 1.0);
  in.nu = rng.uniform(0.0, 1.0);
  in.phi = rng.uniform(-3.0, 3.0);
  in.varphi_col = varphi_col.span();
  in.lambda_col = lambda_col.span();
  in.rho = rng.uniform(0.2, 10.0);
  in.capacity = rng.uniform(0.5, 3.0);

  const Vec solution = solve_a_block(in, Vec(m, 0.0), tight_inner());

  // Feasibility.
  double total = 0.0;
  for (double x : solution) {
    EXPECT_GE(x, -1e-12);
    total += x;
  }
  EXPECT_LE(total, in.capacity + 1e-9);

  // First-order fixed point.
  auto gradient = [&](const Vec& a) {
    double a_sum = 0.0;
    for (double x : a) a_sum += x;
    const double balance = in.alpha + in.beta * a_sum - in.mu - in.nu;
    Vec g(m);
    for (std::size_t i = 0; i < m; ++i)
      g[i] = in.phi * in.beta + in.varphi_col[i] + in.rho * in.beta * balance +
             in.rho * (a[i] - in.lambda_col[i]);
    return g;
  };
  auto project = [&](const Vec& x) {
    return project_capped_simplex(x, in.capacity);
  };
  const auto check = check_first_order_optimality(solution, gradient, project,
                                                  1e-7, 1e-6, in.capacity);
  EXPECT_TRUE(check.passed) << "residual " << check.residual;

  // Also beat a handful of random feasible points.
  const double f_star = a_block_objective(in, solution);
  for (int k = 0; k < 50; ++k) {
    Vec x(m);
    double s = 0.0;
    for (auto& e : x) {
      e = rng.uniform(0.0, 1.0);
      s += e;
    }
    const double scale = rng.uniform(0.0, 1.0) * in.capacity / std::max(s, 1e-12);
    for (auto& e : x) e *= scale;
    EXPECT_GE(a_block_objective(in, x), f_star - 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ABlockProperty,
                         ::testing::Range<std::uint64_t>(1, 17));

TEST(DualUpdates, MatchDefinitions) {
  EXPECT_DOUBLE_EQ(update_phi(1.0, 2.0, 0.5, 0.2, 3.0, 0.4, 0.1),
                   1.0 + 2.0 * (0.5 + 0.6 - 0.4 - 0.1));
  EXPECT_DOUBLE_EQ(update_varphi(0.5, 2.0, 1.2, 1.0), 0.5 + 2.0 * 0.2);
}

TEST(InnerSolverAblation, FistaAndPgAgree) {
  QuadraticUtility utility;
  const Vec latency{0.01, 0.02, 0.04}, a_row{0.3, 0.3, 0.4},
      varphi_row{0.05, -0.02, 0.0};
  LambdaBlockInputs in;
  in.arrival = 1.0;
  in.latency_row = latency.span();
  in.a_row = a_row.span();
  in.varphi_row = varphi_row.span();
  in.rho = 2.0;
  in.latency_weight = 10.0;
  in.utility = &utility;

  InnerSolverOptions fista = tight_inner();
  InnerSolverOptions pg = tight_inner();
  pg.method = InnerMethod::ProjectedGradient;
  pg.fista.max_iterations = 50000;
  InnerSolverOptions exact = tight_inner();
  exact.method = InnerMethod::Exact;

  const Vec a = solve_lambda_block(in, Vec(3, 0.0), fista);
  const Vec b = solve_lambda_block(in, Vec(3, 0.0), pg);
  const Vec c = solve_lambda_block(in, Vec(3, 0.0), exact);
  EXPECT_LT(max_abs_diff(a, b), 1e-7);
  EXPECT_LT(max_abs_diff(a, c), 1e-7);
}

TEST(InnerSolverAblation, ExactMatchesFistaOnABlock) {
  Rng rng(123);
  for (int trial = 0; trial < 10; ++trial) {
    const std::size_t m = 2 + static_cast<std::size_t>(rng.uniform_int(0, 6));
    Vec varphi_col(m), lambda_col(m);
    for (std::size_t i = 0; i < m; ++i) {
      varphi_col[i] = rng.uniform(-1.0, 1.0);
      lambda_col[i] = rng.uniform(0.0, 1.0);
    }
    ABlockInputs in;
    in.alpha = rng.uniform(0.0, 2.0);
    in.beta = rng.uniform(0.0, 1.0);
    in.mu = rng.uniform(0.0, 1.0);
    in.nu = rng.uniform(0.0, 1.0);
    in.phi = rng.uniform(-3.0, 3.0);
    in.varphi_col = varphi_col.span();
    in.lambda_col = lambda_col.span();
    in.rho = rng.uniform(0.2, 10.0);
    in.capacity = rng.uniform(0.5, 3.0);

    InnerSolverOptions exact = tight_inner();
    exact.method = InnerMethod::Exact;
    const Vec a = solve_a_block(in, Vec(m, 0.0), tight_inner());
    const Vec b = solve_a_block(in, Vec(m, 0.0), exact);
    EXPECT_LT(max_abs_diff(a, b), 1e-6) << "trial " << trial;
  }
}

TEST(InnerSolverAblation, ExactFallsBackForNonQuadraticUtility) {
  // Exponential utility is not a QP: the exact method must fall back to
  // FISTA and still produce the right answer.
  ExponentialUtility utility(0.02);
  const Vec latency{0.01, 0.03}, a_row{0.5, 0.5}, varphi_row{0.0, 0.0};
  LambdaBlockInputs in;
  in.arrival = 1.0;
  in.latency_row = latency.span();
  in.a_row = a_row.span();
  in.varphi_row = varphi_row.span();
  in.rho = 2.0;
  in.latency_weight = 10.0;
  in.utility = &utility;

  InnerSolverOptions exact = tight_inner();
  exact.method = InnerMethod::Exact;
  const Vec a = solve_lambda_block(in, Vec(2, 0.0), tight_inner());
  const Vec b = solve_lambda_block(in, Vec(2, 0.0), exact);
  EXPECT_LT(max_abs_diff(a, b), 1e-9);
}

}  // namespace
}  // namespace ufc::admm
