// Degenerate and boundary configurations the solver must handle exactly:
// single sites, empty front-ends, zero weights, saturated capacity.
#include <gtest/gtest.h>

#include "admm/admg.hpp"
#include "admm/centralized.hpp"
#include "admm/strategy.hpp"
#include "helpers.hpp"

namespace ufc::admm {
namespace {

using ::ufc::testing::make_tiny_problem;

AdmgOptions tight() {
  AdmgOptions options;
  options.tolerance = 1e-6;
  options.max_iterations = 8000;
  return options;
}

TEST(AdmgEdgeCases, SingleDatacenterSingleFrontEnd) {
  UfcProblem p;
  p.power = ServerPowerModel{100.0, 200.0};
  p.fuel_cell_price = 80.0;
  p.latency_weight = 10.0;
  p.utility = std::make_shared<QuadraticUtility>();
  DatacenterSpec dc;
  dc.name = "only";
  dc.servers = 500.0;
  dc.pue = 1.2;
  dc.grid_price = 100.0;  // above p0: fuel cells should carry everything
  dc.carbon_rate = 400.0;
  dc.fuel_cell_capacity_mw = 0.12;
  dc.emission_cost = std::make_shared<AffineCarbonTax>(25.0);
  p.datacenters = {dc};
  p.arrivals = {300.0};
  p.latency_s = Mat(1, 1);
  p.latency_s(0, 0) = 0.012;

  const auto report = solve_admg(p, tight());
  EXPECT_TRUE(report.converged);
  // All load routed to the only site; grid priced out -> full fuel cell.
  EXPECT_NEAR(report.solution.lambda(0, 0), 300.0, 1e-6);
  EXPECT_NEAR(report.solution.nu[0], 0.0, 1e-4);
  EXPECT_NEAR(report.breakdown.utilization, 1.0, 1e-3);
}

TEST(AdmgEdgeCases, ZeroArrivalFrontEndRoutesNothing) {
  auto p = make_tiny_problem();
  p.arrivals[1] = 0.0;
  const auto report = solve_admg(p, tight());
  EXPECT_TRUE(report.converged);
  EXPECT_NEAR(report.solution.lambda.row_sum(1), 0.0, 1e-9);
  EXPECT_NEAR(report.solution.lambda.row_sum(0), p.arrivals[0], 1e-6);
}

TEST(AdmgEdgeCases, ZeroLatencyWeightStillSolvesEnergyProblem) {
  auto p = make_tiny_problem();
  p.latency_weight = 0.0;  // pure cost minimization, utility irrelevant
  const auto report = solve_admg(p, tight());
  EXPECT_TRUE(report.converged);
  EXPECT_NEAR(report.breakdown.utility, 0.0, 1e-12);

  CentralizedOptions central;
  central.max_iterations = 6000;
  const auto oracle = solve_centralized(p, central);
  EXPECT_NEAR(report.breakdown.ufc, oracle.objective,
              0.02 * std::abs(oracle.objective));
}

TEST(AdmgEdgeCases, TightCapacityForcesSplitRouting) {
  // Arrivals equal total capacity: both datacenters must run full.
  auto p = make_tiny_problem();
  p.arrivals = {1000.0, 800.0};
  const auto report = solve_admg(p, tight());
  EXPECT_TRUE(report.converged);
  EXPECT_NEAR(report.solution.lambda.col_sum(0), 1000.0, 2.0);
  EXPECT_NEAR(report.solution.lambda.col_sum(1), 800.0, 2.0);
}

TEST(AdmgEdgeCases, EqualPricesReduceToLatencyOnlyRouting) {
  // Identical energy economics everywhere: routing should follow latency
  // (each front-end at its nearest site), regardless of fuel cells.
  auto p = make_tiny_problem();
  for (auto& dc : p.datacenters) {
    dc.grid_price = 50.0;
    dc.carbon_rate = 400.0;
  }
  const auto report = solve_admg(p, tight());
  EXPECT_TRUE(report.converged);
  EXPECT_GT(report.solution.lambda(0, 0), 0.98 * p.arrivals[0]);
  EXPECT_GT(report.solution.lambda(1, 1), 0.98 * p.arrivals[1]);
}

TEST(AdmgEdgeCases, ZeroCarbonTaxMatchesOracle) {
  auto p = make_tiny_problem();
  auto zero_tax = std::make_shared<AffineCarbonTax>(0.0);
  for (auto& dc : p.datacenters) dc.emission_cost = zero_tax;
  const auto report = solve_admg(p, tight());
  CentralizedOptions central;
  central.max_iterations = 6000;
  const auto oracle = solve_centralized(p, central);
  EXPECT_NEAR(report.breakdown.ufc, oracle.objective,
              0.02 * std::abs(oracle.objective));
  EXPECT_NEAR(report.breakdown.carbon_cost, 0.0, 1e-9);
}

TEST(AdmgEdgeCases, ManyFrontEndsFewDatacenters) {
  const auto p = ::ufc::testing::make_random_problem(777, 25, 2);
  const auto report = solve_admg(p, tight());
  EXPECT_TRUE(report.converged);
  EXPECT_LT(constraint_violation(p, report.solution.lambda,
                                 report.solution.mu),
            0.1);
}

}  // namespace
}  // namespace ufc::admm
