// The pluggable solver-ingredient seams (docs/SOLVER_INGREDIENTS.md):
// registry contracts, policy arithmetic, config binding, and the
// cross-validation of every non-default composition against the default
// reference loop.
#include <gtest/gtest.h>

#include <cmath>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "admm/admg.hpp"
#include "admm/ingredients.hpp"
#include "admm/options.hpp"
#include "helpers.hpp"
#include "opt/kkt.hpp"
#include "util/config.hpp"
#include "util/contract.hpp"

namespace ufc::admm {
namespace {

using ::ufc::testing::make_random_problem;
using ::ufc::testing::make_tiny_problem;

std::string violation_message(const std::function<void()>& action) {
  try {
    action();
  } catch (const ContractViolation& violation) {
    return violation.what();
  }
  ADD_FAILURE() << "expected a ContractViolation";
  return "";
}

// ---------------------------------------------------------------------------
// Registry contracts.

TEST(IngredientRegistry, UnknownPenaltyListsTheAlternatives) {
  const AdmgOptions options;
  const std::string message = violation_message(
      [&] { penalty_registry().create("warm-start", options); });
  EXPECT_NE(message.find("unknown penalty \"warm-start\""), std::string::npos)
      << message;
  EXPECT_NE(message.find("fixed"), std::string::npos) << message;
  EXPECT_NE(message.find("residual-balance"), std::string::npos) << message;
}

TEST(IngredientRegistry, UnknownAccelerationListsTheAlternatives) {
  const AdmgOptions options;
  const std::string message = violation_message(
      [&] { acceleration_registry().create("nesterov", options); });
  EXPECT_NE(message.find("unknown acceleration \"nesterov\""),
            std::string::npos)
      << message;
  EXPECT_NE(message.find("anderson"), std::string::npos) << message;
  EXPECT_NE(message.find("none"), std::string::npos) << message;
  EXPECT_NE(message.find("over-relaxation"), std::string::npos) << message;
}

TEST(IngredientRegistry, DuplicateRegistrationThrows) {
  auto registry = penalty_registry();
  const std::string message = violation_message([&] {
    registry.add("fixed", [](const AdmgOptions&) {
      return std::unique_ptr<PenaltyPolicy>();
    });
  });
  EXPECT_NE(message.find("duplicate penalty registration"), std::string::npos)
      << message;
}

TEST(IngredientRegistry, NamesAreSortedAndComplete) {
  EXPECT_EQ(penalty_registry().names(),
            (std::vector<std::string>{"fixed", "residual-balance"}));
  EXPECT_EQ(acceleration_registry().names(),
            (std::vector<std::string>{"anderson", "none", "over-relaxation"}));
}

TEST(IngredientRegistry, CallersMayExtendTheirCopy) {
  auto registry = acceleration_registry();
  registry.add("custom", [](const AdmgOptions& options) {
    return acceleration_registry().create("none", options);
  });
  EXPECT_TRUE(registry.contains("custom"));
  // The builder registries are value-returning: the extension above must
  // not leak into a fresh copy.
  EXPECT_FALSE(acceleration_registry().contains("custom"));
}

TEST(IngredientRegistry, UnknownNameInOptionsFailsSolverConstruction) {
  AdmgOptions options;
  options.acceleration = "nesterov";
  EXPECT_THROW(AdmgSolver(make_tiny_problem(), options), ContractViolation);
}

// ---------------------------------------------------------------------------
// Policy arithmetic.

TEST(PenaltyPolicies, FixedNeverChangesRho) {
  const AdmgOptions options;
  auto fixed = penalty_registry().create("fixed", options);
  EXPECT_TRUE(fixed->fixed());
  EXPECT_DOUBLE_EQ(fixed->propose(3.5, 1e6, 0.0), 3.5);
}

TEST(PenaltyPolicies, ResidualBalanceFollowsTheDominantResidual) {
  AdmgOptions options;  // ratio 10, increase 2, decrease 2
  options.ingredients.balance_period = 1;  // adapt on every call
  auto policy = penalty_registry().create("residual-balance", options);
  EXPECT_FALSE(policy->fixed());
  EXPECT_DOUBLE_EQ(policy->propose(4.0, 1.0, 0.05), 8.0);  // primal dominates
  EXPECT_DOUBLE_EQ(policy->propose(4.0, 0.05, 1.0), 2.0);  // dual dominates
  EXPECT_DOUBLE_EQ(policy->propose(4.0, 1.0, 0.5), 4.0);   // balanced
}

TEST(AccelerationPolicies, OverRelaxationExtrapolatesExactly) {
  AdmgOptions options;
  options.ingredients.over_relaxation = 1.5;
  auto policy = acceleration_registry().create("over-relaxation", options);
  policy->begin(2);
  const std::vector<double> previous{1.0, 2.0};
  const std::vector<double> stepped{3.0, 0.0};
  std::vector<double> candidate(2, 0.0);
  ASSERT_TRUE(policy->propose(previous, stepped, candidate));
  EXPECT_DOUBLE_EQ(candidate[0], 4.0);   // 1 + 1.5 * (3 - 1)
  EXPECT_DOUBLE_EQ(candidate[1], -1.0);  // 2 + 1.5 * (0 - 2)
  EXPECT_TRUE(policy->accept(1.0, 0.9));
  EXPECT_FALSE(
      policy->accept(1.0, std::numeric_limits<double>::quiet_NaN()));
  EXPECT_EQ(policy->fallbacks(), 1u);
}

TEST(AccelerationPolicies, AndersonSafeguardIsDeterministic) {
  // A colinear history makes the unregularized Gram matrix exactly
  // singular: the mixing weights divide 0/0, propose() declines to offer a
  // candidate and counts the fallback — an ordinary, countable event, not a
  // numerical accident.
  const AdmgOptions options;
  auto policy = acceleration_registry().create("anderson", options);
  policy->begin(2);
  std::vector<double> candidate(2, 0.0);
  // First call: no difference pair yet, no candidate.
  EXPECT_FALSE(policy->propose(std::vector<double>{0.0, 0.0},
                               std::vector<double>{1.0, 1.0}, candidate));
  // Second call: f is unchanged, so dF = 0 and the 1x1 Gram is singular.
  EXPECT_FALSE(policy->propose(std::vector<double>{1.0, 1.1},
                               std::vector<double>{2.0, 2.1}, candidate));
  EXPECT_EQ(policy->fallbacks(), 1u);
  // The degenerate history was purged, so the next call has no pair either.
  EXPECT_FALSE(policy->propose(std::vector<double>{2.0, 2.1},
                               std::vector<double>{2.5, 2.6}, candidate));
  EXPECT_EQ(policy->fallbacks(), 1u);
  // A non-finite measured residual is still rejected by the accept() gate.
  EXPECT_FALSE(policy->accept(1.0, std::numeric_limits<double>::quiet_NaN()));
  EXPECT_EQ(policy->fallbacks(), 2u);
}

TEST(AccelerationPolicies, AndersonMixesAffineFixedPointInOneShot) {
  // For f(x) = T(x) - x affine with T(x) = 0.5 x + c, two iterates fully
  // determine the fixed point; Anderson with one pair must land on it.
  AdmgOptions options;
  options.ingredients.anderson_memory = 1;
  auto policy = acceleration_registry().create("anderson", options);
  policy->begin(1);
  // Fixed point of T(x) = 0.5 x + 1 is x* = 2.
  std::vector<double> candidate(1, 0.0);
  EXPECT_FALSE(policy->propose(std::vector<double>{0.0},
                               std::vector<double>{1.0}, candidate));
  ASSERT_TRUE(policy->propose(std::vector<double>{1.0},
                              std::vector<double>{1.5}, candidate));
  EXPECT_NEAR(candidate[0], 2.0, 1e-12);
  EXPECT_TRUE(policy->accept(1.0, 0.0));
}

TEST(AccelerationPolicies, ResetPurgesHistoryButKeepsFallbacks) {
  const AdmgOptions options;
  auto policy = acceleration_registry().create("anderson", options);
  policy->begin(1);
  std::vector<double> candidate(1, 0.0);
  EXPECT_FALSE(policy->propose(std::vector<double>{0.0},
                               std::vector<double>{1.0}, candidate));
  EXPECT_FALSE(policy->accept(1.0, std::numeric_limits<double>::quiet_NaN()));
  EXPECT_EQ(policy->fallbacks(), 1u);
  policy->reset();
  // After reset the next propose has no pair again (fresh history)...
  EXPECT_FALSE(policy->propose(std::vector<double>{1.0},
                               std::vector<double>{1.5}, candidate));
  // ...and the fallback count survived.
  EXPECT_EQ(policy->fallbacks(), 1u);
}

// ---------------------------------------------------------------------------
// Config binding (the knob guards of validate_ingredients are mirrored in
// options_from_config, so a bad INI value surfaces as a config error).

TEST(IngredientConfig, CompositionRoundTripsThroughConfig) {
  const Config config = Config::parse(
      "[solver]\n"
      "penalty = residual-balance\n"
      "acceleration = anderson\n"
      "penalty_balance_ratio = 5\n"
      "penalty_increase = 3\n"
      "penalty_decrease = 1.5\n"
      "over_relaxation = 1.9\n"
      "anderson_memory = 3\n"
      "anderson_safeguard = 4\n");
  const AdmgOptions options = options_from_config(config);
  EXPECT_EQ(options.penalty, "residual-balance");
  EXPECT_EQ(options.acceleration, "anderson");
  EXPECT_DOUBLE_EQ(options.ingredients.balance_ratio, 5.0);
  EXPECT_DOUBLE_EQ(options.ingredients.increase, 3.0);
  EXPECT_DOUBLE_EQ(options.ingredients.decrease, 1.5);
  EXPECT_DOUBLE_EQ(options.ingredients.over_relaxation, 1.9);
  EXPECT_EQ(options.ingredients.anderson_memory, 3);
  EXPECT_DOUBLE_EQ(options.ingredients.anderson_safeguard, 4.0);
}

TEST(IngredientConfig, DefaultsStayOnTheBitIdenticalComposition) {
  const AdmgOptions options = options_from_config(Config{});
  EXPECT_EQ(options.penalty, "fixed");
  EXPECT_EQ(options.acceleration, "none");
}

TEST(IngredientConfig, RejectsOutOfDomainKnobs) {
  EXPECT_THROW(
      options_from_config(Config::parse("[solver]\nanderson_memory = 0\n")),
      ContractViolation);
  EXPECT_THROW(
      options_from_config(Config::parse("[solver]\nover_relaxation = 2.5\n")),
      ContractViolation);
  EXPECT_THROW(options_from_config(
                   Config::parse("[solver]\npenalty_balance_ratio = 1\n")),
               ContractViolation);
  EXPECT_THROW(
      options_from_config(Config::parse("[solver]\npenalty_increase = 0.5\n")),
      ContractViolation);
  EXPECT_THROW(
      options_from_config(Config::parse("[solver]\npenalty = bogus\n")),
      ContractViolation);
  EXPECT_THROW(
      options_from_config(Config::parse("[solver]\nacceleration = bogus\n")),
      ContractViolation);
}

// ---------------------------------------------------------------------------
// Cross-validation: every non-default composition must reach the reference
// optimum — same objective as the default loop, lambda rows passing the
// eq. (17) KKT check — at three problem sizes.

struct NamedComposition {
  const char* penalty;
  const char* acceleration;
};

constexpr NamedComposition kNonDefault[] = {
    {"residual-balance", "none"},
    {"fixed", "over-relaxation"},
    {"fixed", "anderson"},
    {"residual-balance", "anderson"},
};

/// Validates every lambda row of the solver's next prediction as a
/// projected-gradient fixed point of its sub-problem (eq. (17)); same
/// construction as the screening suite, with rho read *after* the solve so
/// adaptive-penalty runs check against the penalty they ended on.
void expect_lambda_rows_kkt_optimal(AdmgSolver& solver) {
  const Mat a_snap = solver.a();
  const Mat varphi_snap = solver.varphi();
  solver.step();
  const Mat& lambda = solver.lambda();
  const UfcProblem& p = solver.problem();
  const std::size_t n = p.num_datacenters();
  const double rho = solver.options().rho;
  for (std::size_t i = 0; i < p.num_front_ends(); ++i) {
    const double arrival = p.arrivals[i];
    if (arrival <= 0.0) continue;
    Vec row(n);
    for (std::size_t j = 0; j < n; ++j) row[j] = lambda(i, j);
    auto gradient = [&](const Vec& x) {
      double avg_latency = 0.0;
      for (std::size_t j = 0; j < n; ++j)
        avg_latency += x[j] * p.latency_s(i, j);
      avg_latency /= arrival;
      const double uprime = p.utility->derivative(avg_latency);
      Vec g(n);
      for (std::size_t j = 0; j < n; ++j)
        g[j] = -p.latency_weight * uprime * p.latency_s(i, j) -
               varphi_snap(i, j) - rho * (a_snap(i, j) - x[j]);
      return g;
    };
    auto project = [&](const Vec& x) { return project_simplex(x, arrival); };
    const auto check = check_first_order_optimality(row, gradient, project,
                                                    1e-6, 1e-5, arrival);
    EXPECT_TRUE(check.passed) << "row " << i << " residual " << check.residual;
  }
}

TEST(IngredientCompositions, AgreeWithTheReferenceAtThreeSizes) {
  const UfcProblem problems[] = {
      make_tiny_problem(),
      make_random_problem(11, 6, 3),
      make_random_problem(12, 12, 4),
  };
  for (const UfcProblem& problem : problems) {
    const AdmgReport reference = solve_admg(problem, {});
    ASSERT_TRUE(reference.converged);
    double scale = 0.0;
    for (double a : problem.arrivals) scale += a;
    for (const NamedComposition& composition : kNonDefault) {
      AdmgOptions options;
      options.penalty = composition.penalty;
      options.acceleration = composition.acceleration;
      AdmgSolver solver(problem, options);
      const AdmgReport report = solver.solve();
      EXPECT_TRUE(report.converged)
          << composition.penalty << "+" << composition.acceleration;
      EXPECT_NEAR(report.breakdown.ufc, reference.breakdown.ufc, 0.02 * scale)
          << composition.penalty << "+" << composition.acceleration;
      expect_lambda_rows_kkt_optimal(solver);
    }
  }
}

TEST(IngredientCompositions, ResidualBalanceRecoversFromABadRho) {
  // With rho two orders below the well-conditioned value the primal
  // residual dominates and the balancer must ramp the penalty up.
  const UfcProblem problem = make_random_problem(21, 6, 3);
  AdmgOptions options;
  options.rho = 0.1;
  options.penalty = "residual-balance";
  const AdmgReport report = solve_admg(problem, options);
  EXPECT_TRUE(report.converged);
  EXPECT_GT(report.final_penalty, options.rho);
}

TEST(IngredientCompositions, DefaultReportPinsTheFixedComposition) {
  const AdmgReport report = solve_admg(make_tiny_problem(), {});
  EXPECT_EQ(report.acceleration_fallbacks, 0u);
  EXPECT_DOUBLE_EQ(report.final_penalty, AdmgOptions{}.rho);
}

}  // namespace
}  // namespace ufc::admm
