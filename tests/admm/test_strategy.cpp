#include <gtest/gtest.h>

#include "admm/strategy.hpp"
#include "helpers.hpp"
#include "util/contract.hpp"

namespace ufc::admm {
namespace {

using ::ufc::testing::make_random_problem;
using ::ufc::testing::make_tiny_problem;

AdmgOptions tight() {
  AdmgOptions options;
  options.tolerance = 1e-6;
  options.max_iterations = 5000;
  return options;
}

TEST(Strategy, NamesAndPinnings) {
  EXPECT_EQ(to_string(Strategy::Grid), "Grid");
  EXPECT_EQ(to_string(Strategy::FuelCell), "FuelCell");
  EXPECT_EQ(to_string(Strategy::Hybrid), "Hybrid");
  EXPECT_EQ(pinning_for(Strategy::Grid), BlockPinning::PinMu);
  EXPECT_EQ(pinning_for(Strategy::FuelCell), BlockPinning::PinNu);
  EXPECT_EQ(pinning_for(Strategy::Hybrid), BlockPinning::None);
}

TEST(Strategy, GridUsesNoFuelCells) {
  const auto problem = make_tiny_problem();
  const auto report = solve_strategy(problem, Strategy::Grid, tight());
  EXPECT_TRUE(report.converged);
  for (double mu : report.solution.mu) EXPECT_NEAR(mu, 0.0, 1e-9);
  EXPECT_NEAR(report.breakdown.utilization, 0.0, 1e-9);
}

TEST(Strategy, FuelCellDrawsNothingFromGrid) {
  const auto problem = make_tiny_problem();
  const auto report = solve_strategy(problem, Strategy::FuelCell, tight());
  EXPECT_TRUE(report.converged);
  for (double nu : report.solution.nu) EXPECT_NEAR(nu, 0.0, 2e-4);
  EXPECT_NEAR(report.breakdown.utilization, 1.0, 1e-3);
  EXPECT_NEAR(report.breakdown.carbon_tons, 0.0, 1e-6);
}

TEST(Strategy, FuelCellRoutesToNearestDatacenters) {
  // With nu pinned the energy price is p0 everywhere, so only latency
  // matters: each front-end should use its nearest datacenter.
  const auto problem = make_tiny_problem();
  const auto report = solve_strategy(problem, Strategy::FuelCell, tight());
  EXPECT_GT(report.solution.lambda(0, 0), 0.99 * problem.arrivals[0]);
  EXPECT_GT(report.solution.lambda(1, 1), 0.99 * problem.arrivals[1]);
}

TEST(Strategy, HybridDominatesBothBaselines) {
  const auto problem = make_tiny_problem();
  const double ufc_grid =
      solve_strategy(problem, Strategy::Grid, tight()).breakdown.ufc;
  const double ufc_fc =
      solve_strategy(problem, Strategy::FuelCell, tight()).breakdown.ufc;
  const double ufc_hybrid =
      solve_strategy(problem, Strategy::Hybrid, tight()).breakdown.ufc;
  const double tolerance = 1e-3 * std::abs(ufc_grid);
  EXPECT_GE(ufc_hybrid, ufc_grid - tolerance);
  EXPECT_GE(ufc_hybrid, ufc_fc - tolerance);
}

class StrategyDominance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(StrategyDominance, HybridNeverWorseOnRandomInstances) {
  const auto problem = make_random_problem(GetParam() + 500, 5, 3);
  const double ufc_grid =
      solve_strategy(problem, Strategy::Grid, tight()).breakdown.ufc;
  const double ufc_fc =
      solve_strategy(problem, Strategy::FuelCell, tight()).breakdown.ufc;
  const double ufc_hybrid =
      solve_strategy(problem, Strategy::Hybrid, tight()).breakdown.ufc;
  const double tolerance = 2e-3 * std::abs(ufc_grid);
  EXPECT_GE(ufc_hybrid, ufc_grid - tolerance);
  EXPECT_GE(ufc_hybrid, ufc_fc - tolerance);
}

INSTANTIATE_TEST_SUITE_P(Seeds, StrategyDominance,
                         ::testing::Range<std::uint64_t>(1, 9));

TEST(Strategy, FuelCellPinningRequiresFullCapacity) {
  auto problem = make_tiny_problem();
  problem.datacenters[0].fuel_cell_capacity_mw = 0.01;  // undersized
  EXPECT_THROW(solve_strategy(problem, Strategy::FuelCell, tight()),
               ContractViolation);
}

TEST(Strategy, GridWorksWithZeroFuelCellCapacity) {
  auto problem = make_tiny_problem();
  for (auto& dc : problem.datacenters) dc.fuel_cell_capacity_mw = 0.0;
  const auto report = solve_strategy(problem, Strategy::Grid, tight());
  EXPECT_TRUE(report.converged);
}

TEST(Strategy, HybridReducesToGridWhenFuelCellsPricedOut) {
  auto problem = make_tiny_problem();
  problem.fuel_cell_price = 10000.0;  // absurdly expensive
  const auto hybrid = solve_strategy(problem, Strategy::Hybrid, tight());
  const auto grid = solve_strategy(problem, Strategy::Grid, tight());
  EXPECT_NEAR(hybrid.breakdown.ufc, grid.breakdown.ufc,
              1e-3 * std::abs(grid.breakdown.ufc));
  for (double mu : hybrid.solution.mu) EXPECT_NEAR(mu, 0.0, 1e-6);
}

TEST(Strategy, HybridGoesAllFuelCellWhenFree) {
  auto problem = make_tiny_problem();
  problem.fuel_cell_price = 0.0;
  const auto hybrid = solve_strategy(problem, Strategy::Hybrid, tight());
  EXPECT_GT(hybrid.breakdown.utilization, 0.99);
}

}  // namespace
}  // namespace ufc::admm
