#include <gtest/gtest.h>

#include "admm/async.hpp"
#include "helpers.hpp"
#include "util/contract.hpp"

namespace ufc::admm {
namespace {

using ::ufc::testing::make_tiny_problem;

AsyncOptions tight_async(double participation) {
  AsyncOptions options;
  options.admg.tolerance = 1e-6;
  options.admg.max_iterations = 20000;
  options.admg.record_trace = false;
  options.participation = participation;
  return options;
}

TEST(AsyncAdmg, FullParticipationMatchesSynchronousSolver) {
  const auto problem = make_tiny_problem();
  const auto options = tight_async(1.0);
  const auto async = solve_async_admg(problem, options);
  const auto sync = solve_admg(problem, options.admg);
  EXPECT_EQ(async.iterations, sync.iterations);
  EXPECT_EQ(async.skipped_updates, 0u);
  EXPECT_EQ(max_abs_diff(async.solution.lambda, sync.solution.lambda), 0.0);
  EXPECT_EQ(max_abs_diff(async.solution.mu, sync.solution.mu), 0.0);
}

class AsyncParticipation : public ::testing::TestWithParam<double> {};

TEST_P(AsyncParticipation, StillReachesTheOptimum) {
  const auto problem = make_tiny_problem();
  const auto async = solve_async_admg(problem, tight_async(GetParam()));
  EXPECT_TRUE(async.converged);
  EXPECT_GT(async.skipped_updates, 0u);
  // Same optimum as the synchronous solver (tiny problem optimum -22.62).
  EXPECT_NEAR(async.breakdown.ufc, -22.62, 0.05);
  EXPECT_LT(constraint_violation(problem, async.solution.lambda,
                                 async.solution.mu),
            1e-2);
}

INSTANTIATE_TEST_SUITE_P(Rates, AsyncParticipation,
                         ::testing::Values(0.5, 0.7, 0.9));

TEST(AsyncAdmg, LowerParticipationNeedsMoreIterations) {
  const auto problem = make_tiny_problem();
  const auto full = solve_async_admg(problem, tight_async(1.0));
  auto half_options = tight_async(0.5);
  half_options.seed = 3;
  const auto half = solve_async_admg(problem, half_options);
  EXPECT_TRUE(full.converged);
  EXPECT_TRUE(half.converged);
  EXPECT_GT(half.iterations, full.iterations);
}

TEST(AsyncAdmg, DeterministicForSeed) {
  const auto problem = make_tiny_problem();
  auto options = tight_async(0.6);
  options.seed = 42;
  const auto a = solve_async_admg(problem, options);
  const auto b = solve_async_admg(problem, options);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.skipped_updates, b.skipped_updates);
  EXPECT_EQ(max_abs_diff(a.solution.lambda, b.solution.lambda), 0.0);
}

TEST(AsyncAdmg, InvalidParticipationThrows) {
  const auto problem = make_tiny_problem();
  EXPECT_THROW(solve_async_admg(problem, tight_async(0.0)),
               ContractViolation);
  EXPECT_THROW(solve_async_admg(problem, tight_async(1.5)),
               ContractViolation);
}

TEST(AsyncAdmg, PinnedBaselinesRequireFullParticipation) {
  const auto problem = make_tiny_problem();
  auto options = tight_async(0.8);
  options.admg.pinning = BlockPinning::PinMu;
  EXPECT_THROW(solve_async_admg(problem, options), ContractViolation);
  options.participation = 1.0;
  const auto report = solve_async_admg(problem, options);
  EXPECT_TRUE(report.converged);
}

}  // namespace
}  // namespace ufc::admm
