#include <gtest/gtest.h>

#include <memory>

#include "admm/centralized.hpp"
#include "helpers.hpp"
#include "util/contract.hpp"
#include "util/rng.hpp"

namespace ufc::admm {
namespace {

using ::ufc::testing::make_tiny_problem;

TEST(OptimalDispatch, GridCheaperMeansNoFuelCells) {
  DatacenterSpec dc;
  dc.servers = 1000.0;
  dc.grid_price = 30.0;
  dc.carbon_rate = 200.0;  // +$5/MWh at $25/ton
  dc.fuel_cell_capacity_mw = 1.0;
  dc.emission_cost = std::make_shared<AffineCarbonTax>(25.0);
  EXPECT_DOUBLE_EQ(optimal_dispatch_mw(dc, 80.0, 0.5), 0.0);
}

TEST(OptimalDispatch, FuelCellCheaperMeansFullDispatch) {
  DatacenterSpec dc;
  dc.servers = 1000.0;
  dc.grid_price = 90.0;
  dc.carbon_rate = 500.0;
  dc.fuel_cell_capacity_mw = 1.0;
  dc.emission_cost = std::make_shared<AffineCarbonTax>(25.0);
  EXPECT_NEAR(optimal_dispatch_mw(dc, 80.0, 0.5), 0.5, 1e-9);
}

TEST(OptimalDispatch, CapacityLimitsDispatch) {
  DatacenterSpec dc;
  dc.grid_price = 200.0;
  dc.carbon_rate = 0.0;
  dc.fuel_cell_capacity_mw = 0.2;
  dc.emission_cost = std::make_shared<AffineCarbonTax>(25.0);
  EXPECT_NEAR(optimal_dispatch_mw(dc, 80.0, 0.5), 0.2, 1e-9);
}

TEST(OptimalDispatch, CarbonTaxTipsTheBalance) {
  DatacenterSpec dc;
  dc.grid_price = 75.0;  // cheaper than fuel cells pre-tax
  dc.carbon_rate = 800.0;
  dc.fuel_cell_capacity_mw = 1.0;
  // 800 kg/MWh * $25/ton = $20/MWh effective -> 95 > 80: full fuel cell.
  dc.emission_cost = std::make_shared<AffineCarbonTax>(25.0);
  EXPECT_NEAR(optimal_dispatch_mw(dc, 80.0, 0.4), 0.4, 1e-9);
  // Without the tax the grid wins.
  dc.emission_cost = std::make_shared<AffineCarbonTax>(0.0);
  EXPECT_DOUBLE_EQ(optimal_dispatch_mw(dc, 80.0, 0.4), 0.0);
}

TEST(OptimalDispatch, QuadraticCostGivesInteriorDispatch) {
  // With a strongly convex emission cost the marginal grid cost rises with
  // draw, so the optimum can split between grid and fuel cells.
  DatacenterSpec dc;
  dc.grid_price = 60.0;
  dc.carbon_rate = 1000.0;  // 1 ton per MWh for easy numbers
  dc.fuel_cell_capacity_mw = 10.0;
  dc.emission_cost = std::make_shared<QuadraticEmissionCost>(0.0, 10.0);
  // Marginal grid cost at draw nu: 60 + 20 nu; equals p0 = 80 at nu = 1.
  // For demand 3: mu* = 2.
  const double mu = optimal_dispatch_mw(dc, 80.0, 3.0);
  EXPECT_NEAR(mu, 2.0, 1e-6);
}

TEST(ProjectRouting, AlreadyFeasibleIsFixed) {
  const auto problem = make_tiny_problem();
  Mat lambda(2, 2, 0.0);
  lambda(0, 0) = 600.0;
  lambda(1, 1) = 400.0;
  const Mat projected = project_routing(problem, lambda);
  EXPECT_LT(max_abs_diff(projected, lambda), 1e-6);
}

TEST(ProjectRouting, RestoresRowSumsAndCapacity) {
  const auto problem = make_tiny_problem();
  Rng rng(4);
  Mat lambda(2, 2);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j) lambda(i, j) = rng.uniform(-200.0, 900.0);
  const Mat projected = project_routing(problem, lambda, 5000);
  // Dykstra converges geometrically; at workload scale ~1e3 a relative
  // accuracy of 1e-6 is plenty for downstream use.
  for (std::size_t i = 0; i < 2; ++i)
    EXPECT_NEAR(projected.row_sum(i), problem.arrivals[i], 1e-2);
  for (std::size_t j = 0; j < 2; ++j)
    EXPECT_LE(projected.col_sum(j), problem.datacenters[j].servers + 1e-2);
  for (double x : projected.raw()) EXPECT_GE(x, -1e-4);
}

TEST(Centralized, TinyProblemFindsCornerOptimum) {
  const auto problem = make_tiny_problem();
  const auto result = solve_centralized(problem);
  // Known optimum: nearest routing, fuel cells only at the pricey DC.
  EXPECT_NEAR(result.objective, -22.62, 0.15);
  EXPECT_GT(result.solution.lambda(0, 0), 590.0);
  EXPECT_GT(result.solution.lambda(1, 1), 390.0);
}

TEST(Centralized, GridOnlyFlagForcesZeroMu) {
  const auto problem = make_tiny_problem();
  CentralizedOptions options;
  options.grid_only = true;
  options.max_iterations = 2000;
  const auto result = solve_centralized(problem, options);
  for (double mu : result.solution.mu) EXPECT_DOUBLE_EQ(mu, 0.0);
}

TEST(Centralized, FuelCellOnlyFlagForcesZeroNu) {
  const auto problem = make_tiny_problem();
  CentralizedOptions options;
  options.fuel_cell_only = true;
  options.max_iterations = 2000;
  const auto result = solve_centralized(problem, options);
  for (double nu : result.solution.nu) EXPECT_NEAR(nu, 0.0, 1e-6);
}

TEST(Centralized, ConflictingFlagsThrow) {
  const auto problem = make_tiny_problem();
  CentralizedOptions options;
  options.grid_only = true;
  options.fuel_cell_only = true;
  EXPECT_THROW(solve_centralized(problem, options), ContractViolation);
}

TEST(RoutingOptimalityResidual, SmallAtOptimumLargeElsewhere) {
  const auto problem = make_tiny_problem();
  const auto result = solve_centralized(problem);
  const double at_optimum =
      routing_optimality_residual(problem, result.solution.lambda, 1e-3);

  Mat uniform(2, 2);
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      uniform(i, j) = problem.arrivals[i] / 2.0;
  const double at_uniform =
      routing_optimality_residual(problem, uniform, 1e-3);
  EXPECT_LT(at_optimum, 0.05 * at_uniform);
}

}  // namespace
}  // namespace ufc::admm
