// Active-set screening and the Condat projection: the two opt-in fast-path
// switches must (a) leave the default configuration bit-identical to the
// pinned hexfloat baselines, (b) degenerate to the exact full iteration when
// screening runs a full pass every step, and (c) converge to the same
// optimum as the reference configuration — verified against the reference
// solve and the first-order (KKT) checker at three problem sizes.
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstddef>

#include "admm/admg.hpp"
#include "admm/engine.hpp"
#include "admm/options.hpp"
#include "helpers.hpp"
#include "opt/kkt.hpp"
#include "util/config.hpp"
#include "util/contract.hpp"

namespace ufc::admm {
namespace {

using ::ufc::testing::make_random_problem;
using ::ufc::testing::make_tiny_problem;

AdmgOptions fast_path_options() {
  AdmgOptions options;
  options.inner.projection = SimplexProjection::Condat;
  options.screening.enabled = true;
  return options;
}

/// Validates every lambda row of the solver's next prediction as a
/// projected-gradient fixed point of its sub-problem (eq. (17)), built from
/// a snapshot of the (a, varphi) state the step consumes. Catches both a
/// wrong Condat threshold and an incorrectly screened-out coordinate: the
/// check runs over the full row, not the support.
void expect_lambda_rows_kkt_optimal(AdmgSolver& solver) {
  const Mat a_snap = solver.a();
  const Mat varphi_snap = solver.varphi();
  solver.step();
  const Mat& lambda = solver.lambda();
  const UfcProblem& p = solver.problem();
  const std::size_t m = p.num_front_ends();
  const std::size_t n = p.num_datacenters();
  const double rho = solver.options().rho;
  for (std::size_t i = 0; i < m; ++i) {
    const double arrival = p.arrivals[i];
    if (arrival <= 0.0) continue;
    Vec row(n);
    for (std::size_t j = 0; j < n; ++j) row[j] = lambda(i, j);
    auto gradient = [&](const Vec& x) {
      double avg_latency = 0.0;
      for (std::size_t j = 0; j < n; ++j)
        avg_latency += x[j] * p.latency_s(i, j);
      avg_latency /= arrival;
      const double uprime = p.utility->derivative(avg_latency);
      Vec g(n);
      for (std::size_t j = 0; j < n; ++j)
        g[j] = -p.latency_weight * uprime * p.latency_s(i, j) -
               varphi_snap(i, j) - rho * (a_snap(i, j) - x[j]);
      return g;
    };
    auto project = [&](const Vec& x) { return project_simplex(x, arrival); };
    const auto check = check_first_order_optimality(row, gradient, project,
                                                    1e-6, 1e-5, arrival);
    EXPECT_TRUE(check.passed)
        << "row " << i << " residual " << check.residual;
  }
}

TEST(ActiveSetScreening, DefaultOptionsKeepThePinnedConfiguration) {
  // The bit-pinned baselines (test_engine.cpp) assume the sort projection
  // and no screening; the fast path must stay opt-in.
  const AdmgOptions defaults;
  EXPECT_EQ(defaults.inner.projection, SimplexProjection::SortThreshold);
  EXPECT_FALSE(defaults.screening.enabled);
  EXPECT_GE(defaults.screening.full_pass_every, 1);
}

TEST(ActiveSetScreening, DefaultSolveStaysBitIdenticalToPinnedBaseline) {
  // Duplicated anchor values from EngineEquivalence.PinnedFullSolveReport:
  // the screening/Condat machinery must not perturb the default path.
  AdmgSolver solver(make_tiny_problem(), {});
  const AdmgReport report = solver.solve();
  EXPECT_EQ(report.iterations, 62);
  EXPECT_EQ(report.breakdown.ufc, -0x1.69eb9643140d8p+4);
  EXPECT_EQ(report.balance_residual, 0x1.419497d9a6666p-20);
  EXPECT_EQ(report.copy_residual, 0x1.a48e808p-27);
}

TEST(ActiveSetScreening, FullPassEveryStepIsBitIdenticalToUnscreened) {
  // With full_pass_every = 1 every step is an unrestricted verification
  // pass, so screening reduces to pure bookkeeping: the iterates must match
  // the unscreened engine bit for bit, step by step.
  AdmgOptions screened;
  screened.screening.enabled = true;
  screened.screening.full_pass_every = 1;
  AdmgSolver a(make_tiny_problem(), {});
  AdmgSolver b(make_tiny_problem(), screened);
  for (int k = 0; k < 6; ++k) {
    a.step();
    b.step();
    EXPECT_EQ(max_abs_diff(a.lambda(), b.lambda()), 0.0) << "step " << k;
    EXPECT_EQ(max_abs_diff(a.a(), b.a()), 0.0) << "step " << k;
    EXPECT_EQ(max_abs_diff(a.varphi(), b.varphi()), 0.0) << "step " << k;
    EXPECT_EQ(a.last_change(), b.last_change()) << "step " << k;
  }
}

TEST(ActiveSetScreening, ScreenedSolveMatchesReferenceAtThreeSizes) {
  struct Case {
    std::size_t m, n;
    std::uint64_t seed;  // 0 = the hand-built tiny problem
  };
  constexpr std::array<Case, 3> cases = {{{2, 2, 0}, {12, 4, 3}, {32, 8, 4}}};
  for (const auto& c : cases) {
    const UfcProblem problem =
        c.seed == 0 ? make_tiny_problem() : make_random_problem(c.seed, c.m, c.n);
    AdmgOptions reference_options;
    reference_options.max_iterations = 8000;
    AdmgSolver reference(problem, reference_options);
    const AdmgReport ref = reference.solve();

    AdmgOptions fast = fast_path_options();
    fast.max_iterations = 8000;
    AdmgSolver screened(problem, fast);
    const AdmgReport scr = screened.solve();

    ASSERT_TRUE(ref.converged) << c.m << "x" << c.n;
    ASSERT_TRUE(scr.converged) << c.m << "x" << c.n;
    // Both runs stop at the shared tolerance; the iterates agree to the
    // tolerance scale, not bitwise (restricted Lipschitz constants and the
    // Condat threshold's ulp-level difference reorder the trajectory). The
    // solution is in raw workload units, so scale by the total arrivals.
    double total_arrivals = 0.0;
    for (const double a : problem.arrivals) total_arrivals += a;
    EXPECT_LE(max_abs_diff(ref.solution.lambda, scr.solution.lambda),
              1e-3 * total_arrivals)
        << c.m << "x" << c.n;
    EXPECT_NEAR(ref.breakdown.ufc, scr.breakdown.ufc,
                1e-3 * std::abs(ref.breakdown.ufc))
        << c.m << "x" << c.n;
  }
}

TEST(ActiveSetScreening, FastPathLambdaRowsAreKktOptimalAtThreeSizes) {
  struct Case {
    std::size_t m, n;
    std::uint64_t seed;
  };
  constexpr std::array<Case, 3> cases = {{{2, 2, 0}, {12, 4, 5}, {32, 8, 6}}};
  for (const auto& c : cases) {
    const UfcProblem problem =
        c.seed == 0 ? make_tiny_problem() : make_random_problem(c.seed, c.m, c.n);
    AdmgOptions fast = fast_path_options();
    fast.max_iterations = 500;
    AdmgSolver solver(problem, fast);
    (void)solver.solve();
    expect_lambda_rows_kkt_optimal(solver);
  }
}

TEST(ActiveSetScreening, ScreenedStepsGateConvergenceClaims) {
  AdmgOptions options = fast_path_options();
  InProcessExecutor executor(make_tiny_problem(), options);
  // Cold start: nothing verified yet.
  EXPECT_FALSE(executor.inputs_fresh(0));
  executor.step(0);
  // The first full pass grows the support from empty, so it resets the gate
  // rather than certifying (a full pass certifies only when the support is
  // stable under it).
  EXPECT_FALSE(executor.inputs_fresh(1));
  // Driving the executor to convergence requires a certified iterate: the
  // engine's gate consults inputs_fresh, so a converged run ends verified.
  AdmgEngine engine(options);
  const SolveCore core = engine.solve(executor, 1);
  ASSERT_TRUE(core.converged);
  EXPECT_TRUE(executor.inputs_fresh(0));
  EXPECT_TRUE(executor.is_converged());
  // Convergence happens on a full pass, so the next step is screened and
  // immediately revokes the certificate until the next verification.
  executor.step(0);
  EXPECT_FALSE(executor.inputs_fresh(0));
  EXPECT_FALSE(executor.is_converged());
}

TEST(ActiveSetScreening, UnscreenedExecutorIsAlwaysFresh) {
  InProcessExecutor executor(make_tiny_problem(), {});
  EXPECT_TRUE(executor.inputs_fresh(0));
  executor.step(0);
  EXPECT_TRUE(executor.inputs_fresh(1));
}

TEST(ActiveSetScreening, RestoreForcesReverification) {
  const UfcProblem problem = make_random_problem(9, 8, 3);
  AdmgOptions options = fast_path_options();
  InProcessExecutor executor(problem, options);
  for (int k = 0; k < 3; ++k) executor.step(k);
  const auto bytes = executor.checkpoint();

  InProcessExecutor restored(problem, options);
  restored.restore(bytes);
  // Screening bookkeeping is not serialized: the restored executor must not
  // trust any pre-restore certificate, and must re-verify with full passes
  // before it can claim convergence again.
  EXPECT_FALSE(restored.inputs_fresh(0));
  AdmgEngine engine(options);
  const SolveCore core = engine.solve(restored, 3);
  EXPECT_TRUE(core.converged);
  EXPECT_TRUE(restored.inputs_fresh(0));
}

TEST(ActiveSetScreening, RejectsPartialParticipation) {
  AdmgOptions options = fast_path_options();
  // Screening's support invariants assume every row re-solves every pass;
  // the straggler model violates that, so the combination is rejected.
  EXPECT_THROW(
      PartialParticipationExecutor(make_tiny_problem(), options, 0.5, 7),
      ContractViolation);
}

TEST(ActiveSetScreening, InvalidFullPassPeriodThrows) {
  AdmgOptions options;
  options.screening.enabled = true;
  options.screening.full_pass_every = 0;
  EXPECT_THROW(InProcessExecutor(make_tiny_problem(), options),
               ContractViolation);
}

TEST(ActiveSetScreening, OptionsParseProjectionAndScreeningKeys) {
  const Config config = Config::parse(
      "[solver]\n"
      "projection = condat\n"
      "screening = true\n"
      "screening_full_pass_every = 4\n");
  const AdmgOptions options = options_from_config(config, {});
  EXPECT_EQ(options.inner.projection, SimplexProjection::Condat);
  EXPECT_TRUE(options.screening.enabled);
  EXPECT_EQ(options.screening.full_pass_every, 4);
}

TEST(ActiveSetScreening, OptionsRejectUnknownProjectionName) {
  const Config config = Config::parse("[solver]\nprojection = quickselect\n");
  EXPECT_THROW(options_from_config(config, {}), ContractViolation);
}

}  // namespace
}  // namespace ufc::admm
