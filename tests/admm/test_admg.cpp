// Core correctness of the 4-block ADM-G solver: convergence, feasibility,
// agreement with the independent centralized oracle, and first-order
// optimality of the returned point.
#include <gtest/gtest.h>

#include "admm/admg.hpp"
#include "admm/centralized.hpp"
#include "helpers.hpp"

namespace ufc::admm {
namespace {

using ::ufc::testing::make_random_problem;
using ::ufc::testing::make_tiny_problem;

AdmgOptions tight_options() {
  AdmgOptions options;
  options.tolerance = 1e-6;
  options.max_iterations = 5000;
  return options;
}

TEST(AdmgSolver, ConvergesOnTinyProblem) {
  const auto problem = make_tiny_problem();
  const auto report = solve_admg(problem, tight_options());
  EXPECT_TRUE(report.converged);
  EXPECT_LT(report.iterations, 5000);
}

TEST(AdmgSolver, SolutionIsFeasible) {
  const auto problem = make_tiny_problem();
  const auto report = solve_admg(problem, tight_options());
  // Tolerance in workload units: residuals scale with arrivals (~1e3).
  EXPECT_LT(constraint_violation(problem, report.solution.lambda,
                                 report.solution.mu),
            1e-2);
  // Row sums must match arrivals exactly (enforced by projection).
  for (std::size_t i = 0; i < problem.num_front_ends(); ++i)
    EXPECT_NEAR(report.solution.lambda.row_sum(i), problem.arrivals[i], 1e-6);
}

TEST(AdmgSolver, MatchesCentralizedOracleOnTinyProblem) {
  const auto problem = make_tiny_problem();
  const auto admg = solve_admg(problem, tight_options());

  CentralizedOptions central;
  central.max_iterations = 8000;
  const auto oracle = solve_centralized(problem, central);

  // Objectives agree to a small relative tolerance (the oracle is a
  // subgradient method, so it is the looser of the two).
  const double scale = std::abs(oracle.objective);
  EXPECT_NEAR(admg.breakdown.ufc, oracle.objective, 0.01 * scale);
  // ADM-G must not be worse than the oracle beyond tolerance.
  EXPECT_GT(admg.breakdown.ufc, oracle.objective - 0.01 * scale);
}

TEST(AdmgSolver, SolutionPassesFirstOrderOptimalityCheck) {
  const auto problem = make_tiny_problem();
  const auto report = solve_admg(problem, tight_options());
  const double residual =
      routing_optimality_residual(problem, report.solution.lambda, 1e-3);
  EXPECT_LT(residual, 2e-3);
}

TEST(AdmgSolver, ResidualsDecrease) {
  const auto problem = make_tiny_problem();
  auto options = tight_options();
  options.record_trace = true;
  const auto report = solve_admg(problem, options);
  ASSERT_GE(report.trace.copy_residual.size(), 10u);
  const auto& r = report.trace.copy_residual;
  // Compare early vs late plateau (ADMM residuals are not monotone, but
  // must decay overall).
  EXPECT_LT(r.back(), 0.01 * (r.front() + 1e-12) + 1e-6);
}

TEST(AdmgSolver, PlainAdmmAblationStillRunsButMayDiffer) {
  const auto problem = make_tiny_problem();
  auto options = tight_options();
  options.gaussian_back_substitution = false;
  const auto report = solve_admg(problem, options);
  // Plain 4-block ADMM has no convergence guarantee, but on this smooth
  // instance it should still produce a feasible point.
  EXPECT_LT(constraint_violation(problem, report.solution.lambda,
                                 report.solution.mu),
            1.0);
}

class AdmgRandomized : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(AdmgRandomized, MatchesOracleAndIsFeasible) {
  const auto problem = make_random_problem(GetParam(), 4, 3);
  const auto admg = solve_admg(problem, tight_options());
  EXPECT_TRUE(admg.converged);
  EXPECT_LT(constraint_violation(problem, admg.solution.lambda,
                                 admg.solution.mu),
            0.05);

  CentralizedOptions central;
  central.max_iterations = 6000;
  const auto oracle = solve_centralized(problem, central);
  const double scale = std::max(1.0, std::abs(oracle.objective));
  EXPECT_NEAR(admg.breakdown.ufc, oracle.objective, 0.02 * scale);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdmgRandomized,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

}  // namespace
}  // namespace ufc::admm
