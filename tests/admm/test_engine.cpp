// The engine refactor contract: one iteration loop, three executors, zero
// arithmetic drift. The hexfloat baselines below were captured from the
// pre-refactor drivers (AdmgSolver before the AdmgEngine extraction) on the
// tiny 2x2 problem with default options; every EXPECT_EQ is a bit-for-bit
// comparison.
#include <gtest/gtest.h>

#include <array>
#include <cstdio>
#include <vector>

#include "admm/async.hpp"
#include "admm/engine.hpp"
#include "admm/options.hpp"
#include "helpers.hpp"
#include "net/runtime.hpp"
#include "obs/metrics_observer.hpp"
#include "util/config.hpp"
#include "util/contract.hpp"

namespace ufc::admm {
namespace {

using ::ufc::testing::make_tiny_problem;

// Pre-refactor per-step iterate samples, in the order
// {lambda(0,0), lambda(0,1), lambda(1,0), lambda(1,1), mu[0], mu[1],
//  nu[0], nu[1], a(0,0), a(1,1), varphi(0,1), phi[0], last_change}.
constexpr std::array<std::array<double, 13>, 6> kStepBaselines = {{
    {0x1.8af8af8acff45p-1, 0x1.b6db6db72ce44p-2, 0x1.38f3eb4deca59p-3,
     0x1.4b5c9ec61e704p-1, 0x0p+0, 0x0p+0, 0x1.bc01aab04cee7p-5,
     0x1.03adb491cb8c5p-4, 0x1.859eb8977c302p-1, 0x1.4677100cf40cep-1,
     -0x1.87bc99c01852p-4, 0x1.bdf3b88a4b3dcp+0, 0x1.859eb8977c302p-1},
    {0x1.d5d077a3c4518p-1, 0x1.212bdd854429cp-2, 0x0p+0, 0x1.999999999999ap-1,
     0x1.bc01aab04cee7p-5, 0x1.03adb491cb8c5p-4, 0x1.df02ea7e2fep-13,
     0x1.9e3b8e5ebd9p-12, 0x1.d074b4d69394fp-1, 0x1.94b0ef8d2b546p-1,
     -0x1.8838dedfb5df8p-3, 0x1.be3e90feeef53p+1, 0x1.38e77e00dd1ep-3},
    {0x1.0ae32f96ac3a4p+0, 0x1.42801ce437c74p-3, 0x0p+0, 0x1.999999999999ap-1,
     0x1.df02ea7e2fep-13, 0x1.9e3b8e5ebd9p-12, 0x1.e974811a9bfcp-8,
     -0x1.e7b4a5a5f678cp-8, 0x1.0817f0285a9cep+0, 0x1.94eb75de344d8p-1,
     -0x1.21b73a0fad098p-2, 0x1.5389461f1eabcp+2, 0x1.fddb09bfd3318p-4},
    {0x1.2601a7ea4cfeap+0, 0x1.a631691cc6918p-5, 0x0p+0, 0x1.999999999999ap-1,
     0x1.e974811a9bfcp-8, -0x1.e7b4a5a5f678cp-8, 0x1.9f0dd3694cd0ap-8,
     -0x1.9d920be52e0f8p-8, 0x1.231d8141359d2p+0, 0x1.951d16c107a6ep-1,
     -0x1.7b7172fbb60e1p-2, 0x1.cc00e64f4d1cfp+2, 0x1.b05a7e2555708p-4},
    {0x1.3333333333333p+0, 0x0p+0, 0x0p+0, 0x1.999999999999ap-1,
     0x1.9f0dd3694cd0ap-8, -0x1.9d920be52e0f8p-8, 0x1.93d9f6f68bc99p-9,
     -0x1.4f301d3ace138p-9, 0x1.3042eef5e6d4bp+0, 0x1.9531333dbb43p-1,
     -0x1.7b7172fbb60e1p-2, 0x1.2338ab7a17de7p+3, 0x1.a4adb69626f2p-5},
    {0x1.3333333333333p+0, 0x0p+0, 0x0p+0, 0x1.999999999999ap-1,
     0x1.93d9f6f68bc99p-9, -0x1.4f301d3ace138p-9, -0x1.333p-49,
     -0x1.346f1p-41, 0x1.3042eef5e6cabp+0, 0x1.9531333da72e7p-1,
     -0x1.7b7172fbb60e1p-2, 0x1.6070e3cc892dap+3, 0x1.ebf3fa8f8e0b8p-9},
}};

TEST(EngineEquivalence, PinnedIterateBaselines) {
  AdmgSolver solver(make_tiny_problem(), {});
  for (std::size_t k = 0; k < kStepBaselines.size(); ++k) {
    solver.step();
    const auto& want = kStepBaselines[k];
    EXPECT_EQ(solver.lambda()(0, 0), want[0]) << "step " << k + 1;
    EXPECT_EQ(solver.lambda()(0, 1), want[1]) << "step " << k + 1;
    EXPECT_EQ(solver.lambda()(1, 0), want[2]) << "step " << k + 1;
    EXPECT_EQ(solver.lambda()(1, 1), want[3]) << "step " << k + 1;
    EXPECT_EQ(solver.mu()[0], want[4]) << "step " << k + 1;
    EXPECT_EQ(solver.mu()[1], want[5]) << "step " << k + 1;
    EXPECT_EQ(solver.nu()[0], want[6]) << "step " << k + 1;
    EXPECT_EQ(solver.nu()[1], want[7]) << "step " << k + 1;
    EXPECT_EQ(solver.a()(0, 0), want[8]) << "step " << k + 1;
    EXPECT_EQ(solver.a()(1, 1), want[9]) << "step " << k + 1;
    EXPECT_EQ(solver.varphi()(0, 1), want[10]) << "step " << k + 1;
    EXPECT_EQ(solver.phi()[0], want[11]) << "step " << k + 1;
    EXPECT_EQ(solver.last_change(), want[12]) << "step " << k + 1;
  }
}

TEST(EngineEquivalence, PinnedFullSolveReport) {
  AdmgSolver solver(make_tiny_problem(), {});
  const AdmgReport report = solver.solve();
  EXPECT_EQ(report.iterations, 62);
  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.balance_residual, 0x1.419497d9a6666p-20);
  EXPECT_EQ(report.copy_residual, 0x1.a48e808p-27);
  EXPECT_EQ(report.solution.lambda(0, 0), 0x1.2cp+9);
  EXPECT_EQ(report.solution.lambda(1, 1), 0x1.9p+8);
  EXPECT_EQ(report.solution.mu[0], -0x1.a138p-41);
  EXPECT_EQ(report.solution.mu[1], 0x1.26e8f1ce2f195p-3);
  EXPECT_EQ(report.solution.nu[0], 0x1.89374bc6ae748p-3);
  EXPECT_EQ(report.solution.nu[1], 0x1.0e0d9db4ep-20);
  EXPECT_EQ(report.breakdown.ufc, -0x1.69eb9643140d8p+4);
  ASSERT_EQ(report.trace.balance_residual.size(), 62u);
  ASSERT_EQ(report.trace.copy_residual.size(), 62u);
  ASSERT_EQ(report.trace.objective.size(), 62u);
  EXPECT_EQ(report.trace.balance_residual.front(), 0x1.eb851eb851eb8p-4);
  EXPECT_EQ(report.trace.copy_residual.front(), 0x1.567dbcd4f10cp-7);
  EXPECT_EQ(report.trace.objective.front(), -0x1.b8d8138bc251fp+4);
  EXPECT_EQ(report.trace.balance_residual.back(), report.balance_residual);
  EXPECT_EQ(report.trace.copy_residual.back(), report.copy_residual);
  EXPECT_EQ(report.trace.objective.back(), report.breakdown.ufc);
}

TEST(EngineEquivalence, FullParticipationExecutorBitwiseEqualToSynchronous) {
  const auto problem = make_tiny_problem();
  const AdmgOptions options;

  PartialParticipationExecutor executor(problem, options, 1.0, 99);
  AdmgEngine engine(options);
  const SolveCore partial = engine.solve(executor);
  const AdmgReport sync = solve_admg(problem, options);

  EXPECT_EQ(executor.skipped_updates(), 0u);
  EXPECT_EQ(partial.iterations, sync.iterations);
  EXPECT_EQ(partial.converged, sync.converged);
  EXPECT_EQ(max_abs_diff(partial.solution.lambda, sync.solution.lambda), 0.0);
  EXPECT_EQ(max_abs_diff(partial.solution.mu, sync.solution.mu), 0.0);
  EXPECT_EQ(max_abs_diff(partial.solution.nu, sync.solution.nu), 0.0);
  EXPECT_EQ(partial.balance_residual, sync.balance_residual);
  EXPECT_EQ(partial.copy_residual, sync.copy_residual);
  ASSERT_EQ(partial.trace.objective.size(), sync.trace.objective.size());
  for (std::size_t k = 0; k < sync.trace.objective.size(); ++k)
    EXPECT_EQ(partial.trace.objective[k], sync.trace.objective[k]);
}

TEST(EngineEquivalence, ZeroFaultBusExecutorMatchesInProcessEngine) {
  const auto problem = make_tiny_problem();
  AdmgOptions options;
  options.tolerance = 1e-6;
  options.max_iterations = 5000;

  const AdmgReport mono = solve_admg(problem, options);

  net::DistributedOptions dist;
  dist.admg = options;
  const net::DistributedReport bus =
      net::DistributedAdmgRuntime(problem, dist).run();

  EXPECT_TRUE(bus.converged);
  EXPECT_EQ(bus.iterations, mono.iterations);
  EXPECT_EQ(max_abs_diff(bus.solution.lambda, mono.solution.lambda), 0.0);
  EXPECT_EQ(max_abs_diff(bus.solution.mu, mono.solution.mu), 0.0);
  EXPECT_EQ(bus.balance_residual, mono.balance_residual);
  EXPECT_EQ(bus.copy_residual, mono.copy_residual);
  ASSERT_EQ(bus.trace.objective.size(), mono.trace.objective.size());
  for (std::size_t k = 0; k < mono.trace.objective.size(); ++k) {
    EXPECT_EQ(bus.trace.balance_residual[k], mono.trace.balance_residual[k]);
    EXPECT_EQ(bus.trace.copy_residual[k], mono.trace.copy_residual[k]);
    EXPECT_EQ(bus.trace.objective[k], mono.trace.objective[k]);
  }
}

TEST(EngineEquivalence, CheckpointRestoreMidSolveBitIdentical) {
  const auto problem = make_tiny_problem();
  const AdmgOptions options;

  // Uninterrupted reference solve.
  AdmgSolver reference(problem, options);
  const AdmgReport full = reference.solve();

  // Pause after 10 steps, serialize, restore into a fresh solver, finish
  // through the engine path.
  AdmgSolver paused(problem, options);
  for (int k = 0; k < 10; ++k) paused.step();
  const std::vector<std::byte> image = paused.checkpoint();

  AdmgSolver resumed(problem, options);
  resumed.restore(image);
  const AdmgReport rest = resumed.solve_warm();

  EXPECT_TRUE(rest.converged);
  EXPECT_EQ(10 + rest.iterations, full.iterations);
  EXPECT_EQ(max_abs_diff(resumed.lambda(), reference.lambda()), 0.0);
  EXPECT_EQ(max_abs_diff(resumed.a(), reference.a()), 0.0);
  EXPECT_EQ(max_abs_diff(resumed.mu(), reference.mu()), 0.0);
  EXPECT_EQ(max_abs_diff(resumed.nu(), reference.nu()), 0.0);
  EXPECT_EQ(max_abs_diff(rest.solution.lambda, full.solution.lambda), 0.0);
  EXPECT_EQ(rest.balance_residual, full.balance_residual);
  EXPECT_EQ(rest.copy_residual, full.copy_residual);
}

// ---------------------------------------------------------------------------
// Telemetry: the observer sees the same stream the trace records, and never
// perturbs the iterate.

class RecordingObserver : public IterationObserver {
 public:
  void on_iteration(const IterationSample& sample) override {
    samples.push_back(sample);
  }
  void on_solve_end(const SolveCore& /*core*/) override { ++solve_ends; }

  std::vector<IterationSample> samples;
  int solve_ends = 0;
};

TEST(EngineTelemetry, ObserverSeesEveryIterationAndKeepsBitIdentity) {
  const auto problem = make_tiny_problem();
  const AdmgReport plain = solve_admg(problem, {});

  RecordingObserver observer;
  AdmgOptions observed_options;
  observed_options.observer = &observer;
  const AdmgReport observed = solve_admg(problem, observed_options);

  EXPECT_EQ(observed.iterations, plain.iterations);
  EXPECT_EQ(max_abs_diff(observed.solution.lambda, plain.solution.lambda),
            0.0);
  ASSERT_EQ(observer.samples.size(),
            static_cast<std::size_t>(plain.iterations));
  EXPECT_EQ(observer.solve_ends, 1);
  for (std::size_t k = 0; k < observer.samples.size(); ++k) {
    EXPECT_EQ(observer.samples[k].iteration, static_cast<int>(k));
    EXPECT_EQ(observer.samples[k].balance_residual,
              plain.trace.balance_residual[k]);
    EXPECT_EQ(observer.samples[k].copy_residual, plain.trace.copy_residual[k]);
    EXPECT_EQ(observer.samples[k].objective, plain.trace.objective[k]);
    EXPECT_GE(observer.samples[k].wall_seconds, 0.0);
  }
}

// The observability layer's core contract: attaching the MetricsRegistry
// observer with phase profiling enabled must not perturb a single bit of the
// solve, serial or threaded. The expected values are the same pre-refactor
// hexfloat pins PinnedFullSolveReport checks without instrumentation.
TEST(EngineTelemetry, MetricsObserverWithPhaseProfilingKeepsBitIdentity) {
  const auto problem = make_tiny_problem();
  for (const int threads : {1, 4}) {
    obs::MetricsRegistry registry;
    obs::MetricsObserver observer(registry);
    AdmgOptions options;
    options.observer = &observer;
    options.profile_phases = true;
    options.threads = threads;

    const AdmgReport report = solve_admg(problem, options);
    EXPECT_EQ(report.iterations, 62) << "threads=" << threads;
    EXPECT_TRUE(report.converged) << "threads=" << threads;
    EXPECT_EQ(report.balance_residual, 0x1.419497d9a6666p-20)
        << "threads=" << threads;
    EXPECT_EQ(report.copy_residual, 0x1.a48e808p-27) << "threads=" << threads;
    EXPECT_EQ(report.solution.lambda(0, 0), 0x1.2cp+9) << "threads=" << threads;
    EXPECT_EQ(report.solution.lambda(1, 1), 0x1.9p+8) << "threads=" << threads;
    EXPECT_EQ(report.solution.mu[0], -0x1.a138p-41) << "threads=" << threads;
    EXPECT_EQ(report.solution.mu[1], 0x1.26e8f1ce2f195p-3)
        << "threads=" << threads;
    EXPECT_EQ(report.solution.nu[0], 0x1.89374bc6ae748p-3)
        << "threads=" << threads;
    EXPECT_EQ(report.breakdown.ufc, -0x1.69eb9643140d8p+4)
        << "threads=" << threads;

    // The registry really did record the run.
    const obs::Counter* iterations = registry.find_counter("solver.iterations");
    ASSERT_NE(iterations, nullptr);
    EXPECT_EQ(iterations->value(), 62u);
    const obs::Histogram* lambda_seconds =
        registry.find_histogram("solver.phase.lambda_pass_seconds");
    ASSERT_NE(lambda_seconds, nullptr);
    EXPECT_EQ(lambda_seconds->count(), 62u);
  }
}

// Phase samples only appear when profiling is requested, and the split is
// coherent: every component is non-negative. (wall_seconds times the step
// only; the gate runs after it, so the two are not ordered.)
TEST(EngineTelemetry, PhaseProfilesAreCoherentWhenEnabled) {
  const auto problem = make_tiny_problem();

  RecordingObserver unprofiled;
  AdmgOptions plain_options;
  plain_options.observer = &unprofiled;
  (void)solve_admg(problem, plain_options);
  ASSERT_FALSE(unprofiled.samples.empty());
  for (const auto& sample : unprofiled.samples)
    EXPECT_FALSE(sample.has_phases);

  RecordingObserver profiled;
  AdmgOptions options;
  options.observer = &profiled;
  options.profile_phases = true;
  (void)solve_admg(problem, options);
  ASSERT_FALSE(profiled.samples.empty());
  for (const auto& sample : profiled.samples) {
    ASSERT_TRUE(sample.has_phases);
    EXPECT_GE(sample.phases.lambda_pass_seconds, 0.0);
    EXPECT_GE(sample.phases.prediction_seconds, 0.0);
    EXPECT_GE(sample.phases.correction_seconds, 0.0);
    EXPECT_GE(sample.phases.gate_seconds, 0.0);
    EXPECT_GE(sample.wall_seconds, 0.0);
  }
}

TEST(EngineTelemetry, SolveCountersAggregateAcrossSolvesAndDrivers) {
  const auto problem = make_tiny_problem();
  SolveCounters counters;
  AdmgOptions options;
  options.observer = &counters;

  const AdmgReport first = solve_admg(problem, options);
  AsyncOptions async;
  async.admg = options;
  async.participation = 0.7;
  const AsyncReport second = solve_async_admg(problem, async);

  EXPECT_EQ(counters.solves(), 2);
  EXPECT_EQ(counters.converged_solves(), 2);
  EXPECT_EQ(counters.iterations(),
            static_cast<std::int64_t>(first.iterations + second.iterations));
  EXPECT_GE(counters.wall_seconds(), 0.0);
}

TEST(EngineTelemetry, CsvTraceObserverWritesOneRowPerIteration) {
  const auto problem = make_tiny_problem();
  const std::string path = ::testing::TempDir() + "engine_trace.csv";
  {
    CsvTraceObserver observer(path);
    AdmgOptions options;
    options.observer = &observer;
    const AdmgReport report = solve_admg(problem, options);
    EXPECT_EQ(observer.rows_written(),
              static_cast<std::size_t>(report.iterations));
    EXPECT_EQ(observer.path(), path);
  }
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------------
// Config binding.

TEST(EngineOptions, OptionsFromConfigParsesSolverSection) {
  const Config config = Config::parse(
      "[solver]\n"
      "rho = 2.5\n"
      "epsilon = 0.9\n"
      "tolerance = 1e-5\n"
      "max_iterations = 123\n"
      "gaussian_back_substitution = false\n"
      "threads = 2\n");

  const AdmgOptions options = options_from_config(config);
  EXPECT_DOUBLE_EQ(options.rho, 2.5);
  EXPECT_DOUBLE_EQ(options.epsilon, 0.9);
  EXPECT_DOUBLE_EQ(options.tolerance, 1e-5);
  EXPECT_EQ(options.max_iterations, 123);
  EXPECT_FALSE(options.gaussian_back_substitution);
  EXPECT_EQ(options.threads, 2);
}

TEST(EngineOptions, OptionsFromConfigKeepsDefaults) {
  const Config config;
  AdmgOptions defaults;
  defaults.tolerance = 3e-3;
  const AdmgOptions options = options_from_config(config, defaults);
  EXPECT_DOUBLE_EQ(options.tolerance, 3e-3);
  EXPECT_EQ(options.max_iterations, defaults.max_iterations);
}

TEST(EngineOptions, OptionsFromConfigRejectsInvalidValues) {
  const Config bad_rho = Config::parse("[solver]\nrho = -1\n");
  EXPECT_THROW(options_from_config(bad_rho), ContractViolation);

  const Config bad_iters = Config::parse("[solver]\nmax_iterations = 0\n");
  EXPECT_THROW(options_from_config(bad_iters), ContractViolation);
}

}  // namespace
}  // namespace ufc::admm
