// The "newton" centralized backend (projected truncated Newton over the
// reduced routing objective) and the method registry: agreement with the
// subgradient reference, the warm-start hand-off into ADM-G, and the
// registry's rejection contract.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "admm/admg.hpp"
#include "admm/centralized.hpp"
#include "helpers.hpp"
#include "util/contract.hpp"

namespace ufc::admm {
namespace {

using ::ufc::testing::make_random_problem;
using ::ufc::testing::make_tiny_problem;

TEST(CentralizedRegistry, UnknownMethodListsTheAlternatives) {
  CentralizedOptions options;
  options.method = "interior-point";
  try {
    solve_centralized(make_tiny_problem(), options);
    FAIL() << "expected a ContractViolation";
  } catch (const ContractViolation& violation) {
    const std::string message = violation.what();
    EXPECT_NE(message.find("unknown centralized method"), std::string::npos)
        << message;
    EXPECT_NE(message.find("newton"), std::string::npos) << message;
    EXPECT_NE(message.find("subgradient"), std::string::npos) << message;
  }
}

TEST(CentralizedRegistry, ListsBothBackends) {
  EXPECT_EQ(centralized_registry().names(),
            (std::vector<std::string>{"newton", "subgradient"}));
}

TEST(CentralizedNewton, AgreesWithTheSubgradientReference) {
  const UfcProblem problems[] = {
      make_tiny_problem(),
      make_random_problem(31, 6, 3),
      make_random_problem(32, 10, 4),
  };
  for (const UfcProblem& problem : problems) {
    CentralizedOptions newton;
    newton.method = "newton";
    const CentralizedResult second_order = solve_centralized(problem, newton);
    const CentralizedResult reference = solve_centralized(problem, {});
    double scale = 0.0;
    for (double a : problem.arrivals) scale += a;
    // The oracle must match (or beat — it certifies a fixed point, the
    // subgradient reference only runs its budget) the reference objective.
    EXPECT_GT(second_order.objective, reference.objective - 0.02 * scale);
    EXPECT_LE(constraint_violation(problem, second_order.solution.lambda,
                                   second_order.solution.mu),
              1e-6);
  }
}

TEST(CentralizedNewton, CertifiesConvergenceOnTheTinyProblem) {
  CentralizedOptions options;
  options.method = "newton";
  const CentralizedResult result =
      solve_centralized(make_tiny_problem(), options);
  EXPECT_TRUE(result.converged);
  EXPECT_LE(
      routing_optimality_residual(make_tiny_problem(), result.solution.lambda),
      1e-4);
}

TEST(CentralizedNewton, SeedsAdmgWarmStart) {
  // The second-order oracle as a warm-start producer: seeding ADM-G from
  // its plan must converge in fewer iterations than the cold start.
  const UfcProblem problem = make_random_problem(41, 8, 3);

  AdmgSolver cold(problem);
  const AdmgReport cold_report = cold.solve();
  ASSERT_TRUE(cold_report.converged);

  CentralizedOptions newton;
  newton.method = "newton";
  // Run the oracle well past the kink plateau of the piecewise-smooth
  // reduced objective; the tighter plan is what makes the KKT-derived
  // multiplier seeds (docs/SOLVER_INGREDIENTS.md) land near the saddle.
  newton.newton.tolerance = 1e-8;
  const CentralizedResult oracle = solve_centralized(problem, newton);

  AdmgSolver warm(problem);
  warm.seed(oracle.solution);
  const AdmgReport warm_report = warm.solve_warm();
  EXPECT_TRUE(warm_report.converged);
  EXPECT_LT(warm_report.iterations, cold_report.iterations);

  double scale = 0.0;
  for (double a : problem.arrivals) scale += a;
  EXPECT_NEAR(warm_report.breakdown.ufc, cold_report.breakdown.ufc,
              0.02 * scale);
}

}  // namespace
}  // namespace ufc::admm
