// Parameterized property sweeps of the ADM-G solver: every (rho, epsilon,
// utility shape, emission policy) combination must reach the same optimum,
// and the solver must be invariant to the things it claims invariance to.
#include <gtest/gtest.h>

#include <memory>
#include <tuple>

#include "admm/admg.hpp"
#include "admm/centralized.hpp"
#include "helpers.hpp"
#include "util/contract.hpp"

namespace ufc::admm {
namespace {

using ::ufc::testing::make_tiny_problem;

AdmgOptions tight() {
  AdmgOptions options;
  options.tolerance = 1e-6;
  options.max_iterations = 8000;
  return options;
}

class RhoEpsilonSweep
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(RhoEpsilonSweep, SameOptimumForAllPenaltiesAndRelaxations) {
  const auto [rho, epsilon] = GetParam();
  const auto problem = make_tiny_problem();
  auto options = tight();
  options.rho = rho;
  options.epsilon = epsilon;
  const auto report = solve_admg(problem, options);
  EXPECT_TRUE(report.converged) << "rho " << rho << " eps " << epsilon;
  EXPECT_NEAR(report.breakdown.ufc, -22.62, 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RhoEpsilonSweep,
    ::testing::Combine(::testing::Values(1.0, 3.0, 10.0, 30.0),
                       ::testing::Values(0.6, 0.8, 1.0)));

class EmissionPolicySweep : public ::testing::TestWithParam<int> {};

TEST_P(EmissionPolicySweep, ConvergesForNonStronglyConvexPolicies) {
  // The whole point of ADM-G over plain multi-block ADMM: convergence with
  // merely-convex V. Exercise all four families.
  auto problem = make_tiny_problem();
  std::shared_ptr<const EmissionCostFunction> policy;
  switch (GetParam()) {
    case 0: policy = std::make_shared<AffineCarbonTax>(25.0); break;
    case 1: policy = std::make_shared<CapAndTradeCost>(0.05, 60.0); break;
    case 2:
      policy = std::make_shared<SteppedCarbonTax>(
          std::vector<double>{0.05, 0.15}, std::vector<double>{10.0, 30.0, 90.0});
      break;
    default: policy = std::make_shared<QuadraticEmissionCost>(10.0, 50.0);
  }
  for (auto& dc : problem.datacenters) dc.emission_cost = policy;

  const auto report = solve_admg(problem, tight());
  EXPECT_TRUE(report.converged);
  EXPECT_LT(constraint_violation(problem, report.solution.lambda,
                                 report.solution.mu),
            1e-2);

  // Independent oracle agreement.
  CentralizedOptions central;
  central.max_iterations = 6000;
  const auto oracle = solve_centralized(problem, central);
  const double scale = std::abs(oracle.objective);
  EXPECT_NEAR(report.breakdown.ufc, oracle.objective, 0.02 * scale);
}

INSTANTIATE_TEST_SUITE_P(Policies, EmissionPolicySweep,
                         ::testing::Range(0, 4));

class UtilityShapeSweep : public ::testing::TestWithParam<int> {};

TEST_P(UtilityShapeSweep, ConvergesForEveryUtilityShape) {
  auto problem = make_tiny_problem();
  switch (GetParam()) {
    case 0: problem.utility = std::make_shared<QuadraticUtility>(); break;
    case 1: problem.utility = std::make_shared<LinearUtility>(); break;
    default: problem.utility = std::make_shared<ExponentialUtility>(0.02);
  }
  const auto report = solve_admg(problem, tight());
  EXPECT_TRUE(report.converged);

  CentralizedOptions central;
  central.max_iterations = 6000;
  const auto oracle = solve_centralized(problem, central);
  const double scale = std::abs(oracle.objective);
  EXPECT_NEAR(report.breakdown.ufc, oracle.objective, 0.02 * scale);
}

INSTANTIATE_TEST_SUITE_P(Shapes, UtilityShapeSweep, ::testing::Range(0, 3));

TEST(AdmgInvariance, WorkloadScaleDoesNotChangeObjective) {
  const auto problem = make_tiny_problem();
  auto coarse = tight();
  coarse.workload_scale = 1.0;  // disable normalization
  coarse.rho = 0.3;             // the paper's raw-unit setting
  coarse.max_iterations = 60000;
  const auto raw = solve_admg(problem, coarse);

  const auto normalized = solve_admg(problem, tight());
  EXPECT_NEAR(raw.breakdown.ufc, normalized.breakdown.ufc,
              5e-3 * std::abs(normalized.breakdown.ufc));
}

TEST(AdmgInvariance, ObjectiveInvariantUnderScaleTransform) {
  // scale_workload_units must preserve the UFC value of matched points.
  const auto problem = make_tiny_problem();
  const double sigma = 250.0;
  const auto scaled = scale_workload_units(problem, sigma);

  Mat lambda(2, 2, 0.0);
  lambda(0, 0) = 600.0;
  lambda(1, 1) = 400.0;
  Mat lambda_scaled = lambda;
  lambda_scaled *= 1.0 / sigma;
  const Vec mu{0.05, 0.02};
  EXPECT_NEAR(ufc_objective(problem, lambda, mu),
              ufc_objective(scaled, lambda_scaled, mu), 1e-9);
}

TEST(AdmgHeterogeneous, MatchesOracleWithPerSiteServerModels) {
  // The heterogeneous-fleet extension (paper §II-A): per-site power
  // envelopes flow through alpha/beta, the workload scaling and the oracle.
  auto problem = make_tiny_problem();
  problem.datacenters[0].power_override = ServerPowerModel{80.0, 260.0};
  problem.datacenters[1].power_override = ServerPowerModel{130.0, 180.0};
  const auto report = solve_admg(problem, tight());
  EXPECT_TRUE(report.converged);

  CentralizedOptions central;
  central.max_iterations = 6000;
  const auto oracle = solve_centralized(problem, central);
  const double scale = std::abs(oracle.objective);
  EXPECT_NEAR(report.breakdown.ufc, oracle.objective, 0.02 * scale);
}

TEST(AdmgOptionsValidation, RejectsBadParameters) {
  const auto problem = make_tiny_problem();
  {
    auto options = tight();
    options.rho = 0.0;
    EXPECT_THROW(AdmgSolver(problem, options), ContractViolation);
  }
  {
    auto options = tight();
    options.epsilon = 0.5;  // must be strictly > 0.5
    EXPECT_THROW(AdmgSolver(problem, options), ContractViolation);
  }
  {
    auto options = tight();
    options.epsilon = 1.5;
    EXPECT_THROW(AdmgSolver(problem, options), ContractViolation);
  }
  {
    auto options = tight();
    options.max_iterations = 0;
    EXPECT_THROW(AdmgSolver(problem, options), ContractViolation);
  }
}

TEST(AdmgTrace, RecordsEveryIteration) {
  const auto problem = make_tiny_problem();
  auto options = tight();
  options.record_trace = true;
  const auto report = solve_admg(problem, options);
  EXPECT_EQ(report.trace.balance_residual.size(),
            static_cast<std::size_t>(report.iterations));
  EXPECT_EQ(report.trace.objective.size(),
            static_cast<std::size_t>(report.iterations));
  // The final trace objective matches the reported breakdown.
  EXPECT_NEAR(report.trace.objective.back(), report.breakdown.ufc,
              1e-6 * std::abs(report.breakdown.ufc));
}

TEST(AdmgTrace, DisabledTraceStaysEmpty) {
  const auto problem = make_tiny_problem();
  auto options = tight();
  options.record_trace = false;
  const auto report = solve_admg(problem, options);
  EXPECT_TRUE(report.trace.objective.empty());
}

TEST(AdmgWarmStart, SameOptimumFewerIterationsOnSimilarSlot) {
  // Warm-starting from an adjacent, slightly-perturbed slot must reach the
  // same optimum and converge faster than a cold start.
  const auto problem = make_tiny_problem();
  auto perturbed = problem;
  perturbed.datacenters[0].grid_price *= 1.05;
  perturbed.arrivals[0] *= 1.02;
  perturbed.arrivals[1] *= 0.98;

  const auto options = tight();
  AdmgSolver solver(problem, options);
  const auto first = solver.solve();
  ASSERT_TRUE(first.converged);

  solver.set_problem(perturbed);
  const auto warm = solver.solve_warm();
  const auto cold = solve_admg(perturbed, options);

  EXPECT_TRUE(warm.converged);
  EXPECT_NEAR(warm.breakdown.ufc, cold.breakdown.ufc,
              1e-4 * std::abs(cold.breakdown.ufc));
  EXPECT_LT(warm.iterations, cold.iterations);
}

TEST(AdmgWarmStart, SetProblemRejectsDimensionMismatch) {
  const auto problem = make_tiny_problem();
  AdmgSolver solver(problem, tight());
  auto bigger = problem;
  bigger.arrivals.push_back(10.0);
  bigger.latency_s = Mat(3, 2, 0.01);
  EXPECT_THROW(solver.set_problem(bigger), ContractViolation);
}

TEST(AdmgWarmStart, SetProblemRequiresReconvergence) {
  const auto problem = make_tiny_problem();
  AdmgSolver solver(problem, tight());
  (void)solver.solve();
  EXPECT_TRUE(solver.is_converged());
  auto perturbed = problem;
  perturbed.datacenters[1].grid_price *= 2.0;
  solver.set_problem(perturbed);
  EXPECT_FALSE(solver.is_converged());  // must not report stale convergence
}

TEST(AdmgStepApi, ManualSteppingMatchesSolve) {
  const auto problem = make_tiny_problem();
  const auto options = tight();
  AdmgSolver manual(problem, options);
  const auto report = solve_admg(problem, options);
  for (int k = 0; k < report.iterations; ++k) manual.step();
  Mat lambda_servers = manual.lambda();
  lambda_servers *= manual.workload_scale();
  EXPECT_LT(max_abs_diff(lambda_servers, report.solution.lambda), 1e-9);
}

}  // namespace
}  // namespace ufc::admm
