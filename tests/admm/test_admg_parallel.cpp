// Threaded ADM-G determinism: the solver must produce the bitwise-identical
// iterate sequence and report for every thread count. The parallel passes
// write disjoint rows/columns over deterministic chunks, so serial vs
// threads=4 is an exact equality test, not a tolerance test.
#include <gtest/gtest.h>

#include "admm/admg.hpp"
#include "helpers.hpp"

namespace ufc::admm {
namespace {

AdmgOptions with_threads(int threads) {
  AdmgOptions options;
  options.max_iterations = 60;
  options.tolerance = 1e-6;
  options.record_trace = true;
  options.threads = threads;
  return options;
}

void expect_identical_iterates(const AdmgSolver& a, const AdmgSolver& b) {
  EXPECT_EQ(max_abs_diff(a.lambda(), b.lambda()), 0.0);
  EXPECT_EQ(max_abs_diff(a.a(), b.a()), 0.0);
  EXPECT_EQ(max_abs_diff(a.varphi(), b.varphi()), 0.0);
  EXPECT_EQ(max_abs_diff(a.mu(), b.mu()), 0.0);
  EXPECT_EQ(max_abs_diff(a.nu(), b.nu()), 0.0);
  EXPECT_EQ(max_abs_diff(a.phi(), b.phi()), 0.0);
  EXPECT_EQ(a.last_change(), b.last_change());
}

TEST(AdmgParallel, StepSequenceBitIdenticalSerialVsFourThreads) {
  for (std::uint64_t seed : {11u, 12u, 13u}) {
    const auto problem = testing::make_random_problem(seed, 12, 5);
    AdmgSolver serial(problem, with_threads(1));
    AdmgSolver threaded(problem, with_threads(4));
    for (int k = 0; k < 25; ++k) {
      serial.step();
      threaded.step();
      expect_identical_iterates(serial, threaded);
    }
  }
}

TEST(AdmgParallel, ReportsIdenticalSerialVsFourThreads) {
  for (std::uint64_t seed : {21u, 22u, 23u}) {
    const auto problem = testing::make_random_problem(seed, 10, 4);
    const AdmgReport serial = AdmgSolver(problem, with_threads(1)).solve();
    const AdmgReport threaded = AdmgSolver(problem, with_threads(4)).solve();

    EXPECT_EQ(serial.iterations, threaded.iterations);
    EXPECT_EQ(serial.converged, threaded.converged);
    EXPECT_EQ(serial.balance_residual, threaded.balance_residual);
    EXPECT_EQ(serial.copy_residual, threaded.copy_residual);
    EXPECT_EQ(max_abs_diff(serial.solution.lambda, threaded.solution.lambda),
              0.0);
    EXPECT_EQ(max_abs_diff(serial.solution.mu, threaded.solution.mu), 0.0);
    EXPECT_EQ(max_abs_diff(serial.solution.nu, threaded.solution.nu), 0.0);
    EXPECT_EQ(serial.breakdown.ufc, threaded.breakdown.ufc);
    ASSERT_EQ(serial.trace.objective.size(), threaded.trace.objective.size());
    for (std::size_t k = 0; k < serial.trace.objective.size(); ++k)
      EXPECT_EQ(serial.trace.objective[k], threaded.trace.objective[k]);
  }
}

TEST(AdmgParallel, ExactInnerMethodAlsoBitIdentical) {
  const auto problem = testing::make_random_problem(31, 8, 4);
  AdmgOptions serial_opts = with_threads(1);
  serial_opts.inner.method = InnerMethod::Exact;
  AdmgOptions threaded_opts = with_threads(4);
  threaded_opts.inner.method = InnerMethod::Exact;
  AdmgSolver serial(problem, serial_opts);
  AdmgSolver threaded(problem, threaded_opts);
  for (int k = 0; k < 20; ++k) {
    serial.step();
    threaded.step();
    expect_identical_iterates(serial, threaded);
  }
}

TEST(AdmgParallel, PinnedBaselinesBitIdentical) {
  const auto problem = testing::make_tiny_problem();
  for (BlockPinning pinning : {BlockPinning::PinMu, BlockPinning::PinNu}) {
    AdmgOptions serial_opts = with_threads(1);
    serial_opts.pinning = pinning;
    AdmgOptions threaded_opts = with_threads(3);
    threaded_opts.pinning = pinning;
    AdmgSolver serial(problem, serial_opts);
    AdmgSolver threaded(problem, threaded_opts);
    for (int k = 0; k < 15; ++k) {
      serial.step();
      threaded.step();
      expect_identical_iterates(serial, threaded);
    }
  }
}

TEST(AdmgParallel, WarmStartAcrossSetProblemBitIdentical) {
  const auto slot_a = testing::make_random_problem(41, 10, 4);
  const auto slot_b = testing::make_random_problem(42, 10, 4);
  AdmgOptions serial_opts = with_threads(1);
  serial_opts.max_iterations = 40;
  AdmgOptions threaded_opts = with_threads(4);
  threaded_opts.max_iterations = 40;

  AdmgSolver serial(slot_a, serial_opts);
  AdmgSolver threaded(slot_a, threaded_opts);
  (void)serial.solve();
  (void)threaded.solve();
  expect_identical_iterates(serial, threaded);

  serial.set_problem(slot_b);
  threaded.set_problem(slot_b);
  const AdmgReport rs = serial.solve_warm();
  const AdmgReport rt = threaded.solve_warm();
  EXPECT_EQ(rs.iterations, rt.iterations);
  expect_identical_iterates(serial, threaded);
}

}  // namespace
}  // namespace ufc::admm
