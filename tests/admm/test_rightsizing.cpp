#include <gtest/gtest.h>

#include "admm/rightsizing.hpp"
#include "helpers.hpp"
#include "util/contract.hpp"

namespace ufc::admm {
namespace {

using ::ufc::testing::make_tiny_problem;

AdmgOptions tight() {
  AdmgOptions options;
  options.tolerance = 1e-6;
  options.max_iterations = 5000;
  options.record_trace = false;
  return options;
}

TEST(RightSizeServers, ClosedFormRule) {
  const auto problem = make_tiny_problem();
  Mat lambda(2, 2, 0.0);
  lambda(0, 0) = 600.0;
  lambda(1, 1) = 400.0;

  RightSizingOptions options;
  options.min_active_fraction = 0.1;
  options.headroom = 1.05;
  const Vec active = right_size_servers(problem, lambda, options);
  EXPECT_NEAR(active[0], 630.0, 1e-9);  // 1.05 * 600
  EXPECT_NEAR(active[1], 420.0, 1e-9);
}

TEST(RightSizeServers, FloorAndCapBind) {
  const auto problem = make_tiny_problem();
  Mat idle(2, 2, 0.0);  // no load at all
  RightSizingOptions options;
  options.min_active_fraction = 0.25;
  const Vec active = right_size_servers(problem, idle, options);
  EXPECT_NEAR(active[0], 250.0, 1e-9);  // floor of 1000-server fleet
  EXPECT_NEAR(active[1], 200.0, 1e-9);

  Mat full(2, 2, 0.0);  // more than the fleet with headroom
  full(0, 0) = 600.0;
  full(1, 0) = 390.0;
  const Vec capped = right_size_servers(problem, full, options);
  EXPECT_NEAR(capped[0], 1000.0, 1e-9);  // clamped at the fleet size
}

TEST(WithActiveServers, ShrinksFleetAndFuelCells) {
  const auto problem = make_tiny_problem();
  const auto sized = with_active_servers(problem, Vec{500.0, 800.0});
  EXPECT_DOUBLE_EQ(sized.datacenters[0].servers, 500.0);
  EXPECT_NEAR(sized.datacenters[0].fuel_cell_capacity_mw,
              0.5 * problem.datacenters[0].fuel_cell_capacity_mw, 1e-12);
  // Unchanged datacenter keeps its capacity.
  EXPECT_DOUBLE_EQ(sized.datacenters[1].fuel_cell_capacity_mw,
                   problem.datacenters[1].fuel_cell_capacity_mw);
}

TEST(WithActiveServers, RejectsOversizedFleet) {
  const auto problem = make_tiny_problem();
  EXPECT_THROW(with_active_servers(problem, Vec{1200.0, 800.0}),
               ContractViolation);
}

TEST(SolveRightSized, ImprovesUfcOverAlwaysOn) {
  const auto problem = make_tiny_problem();
  const auto always_on =
      solve_strategy(problem, Strategy::Hybrid, tight()).breakdown.ufc;
  const auto sized = solve_right_sized(problem, Strategy::Hybrid, tight());
  EXPECT_TRUE(sized.converged);
  // Shutting idle servers removes idle power -> strictly better here
  // (arrivals are ~55% of capacity).
  EXPECT_GT(sized.final_report.breakdown.ufc, always_on + 1.0);
  // Fleets actually shrank.
  for (std::size_t j = 0; j < 2; ++j)
    EXPECT_LT(sized.active_servers[j], problem.datacenters[j].servers);
}

TEST(SolveRightSized, UfcTrajectoryIsMonotone) {
  const auto problem = make_tiny_problem();
  const auto sized = solve_right_sized(problem, Strategy::Hybrid, tight());
  for (std::size_t r = 1; r < sized.ufc_per_round.size(); ++r)
    EXPECT_GE(sized.ufc_per_round[r], sized.ufc_per_round[r - 1] - 1e-6);
}

TEST(SolveRightSized, ConvergesInFewRounds) {
  const auto problem = make_tiny_problem();
  const auto sized = solve_right_sized(problem, Strategy::Hybrid, tight());
  EXPECT_TRUE(sized.converged);
  EXPECT_LE(sized.rounds, 6);
}

TEST(SolveRightSized, GridStrategyAlsoSupported) {
  const auto problem = make_tiny_problem();
  const auto sized = solve_right_sized(problem, Strategy::Grid, tight());
  EXPECT_TRUE(sized.converged);
  for (double mu : sized.final_report.solution.mu) EXPECT_NEAR(mu, 0.0, 1e-9);
}

TEST(SolveRightSized, RespectsReliabilityFloor) {
  const auto problem = make_tiny_problem();
  RightSizingOptions options;
  options.min_active_fraction = 0.9;  // keep almost everything on
  const auto sized =
      solve_right_sized(problem, Strategy::Hybrid, tight(), options);
  for (std::size_t j = 0; j < 2; ++j)
    EXPECT_GE(sized.active_servers[j],
              0.9 * problem.datacenters[j].servers - 1e-9);
}

TEST(RightSizingOptionsValidation, RejectsBadParameters) {
  const auto problem = make_tiny_problem();
  Mat lambda(2, 2, 0.0);
  {
    RightSizingOptions bad;
    bad.headroom = 0.9;
    EXPECT_THROW(right_size_servers(problem, lambda, bad), ContractViolation);
  }
  {
    RightSizingOptions bad;
    bad.min_active_fraction = 1.5;
    EXPECT_THROW(right_size_servers(problem, lambda, bad), ContractViolation);
  }
  {
    RightSizingOptions bad;
    bad.max_rounds = 0;
    EXPECT_THROW(solve_right_sized(problem, Strategy::Hybrid, tight(), bad),
                 ContractViolation);
  }
}

}  // namespace
}  // namespace ufc::admm
