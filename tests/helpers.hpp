// Shared fixtures: small hand-built and randomized UFC problem instances.
#pragma once

#include <cstdint>
#include <memory>

#include "model/problem.hpp"
#include "util/rng.hpp"

namespace ufc::testing {

/// 2 front-ends, 2 datacenters, round numbers. Feasible and well scaled:
/// arrivals 600 + 400 against capacities 1000 + 800.
inline UfcProblem make_tiny_problem() {
  UfcProblem p;
  p.power = ServerPowerModel{100.0, 200.0};
  p.fuel_cell_price = 80.0;
  p.latency_weight = 10.0;
  p.utility = std::make_shared<QuadraticUtility>();

  DatacenterSpec cheap;
  cheap.name = "cheap-dirty";
  cheap.servers = 1000.0;
  cheap.pue = 1.2;
  cheap.grid_price = 30.0;
  cheap.carbon_rate = 800.0;
  cheap.fuel_cell_capacity_mw = 200.0 * 1000.0 * 1.2 / 1e6;  // full capacity
  cheap.emission_cost = std::make_shared<AffineCarbonTax>(25.0);

  DatacenterSpec pricey;
  pricey.name = "pricey-clean";
  pricey.servers = 800.0;
  pricey.pue = 1.2;
  pricey.grid_price = 90.0;
  pricey.carbon_rate = 250.0;
  pricey.fuel_cell_capacity_mw = 200.0 * 800.0 * 1.2 / 1e6;
  pricey.emission_cost = std::make_shared<AffineCarbonTax>(25.0);

  p.datacenters = {cheap, pricey};
  p.arrivals = {600.0, 400.0};
  p.latency_s = Mat(2, 2);
  p.latency_s(0, 0) = 0.010;  // 10 ms
  p.latency_s(0, 1) = 0.030;
  p.latency_s(1, 0) = 0.040;
  p.latency_s(1, 1) = 0.015;
  return p;
}

/// Randomized feasible instance with M front-ends and N datacenters.
/// Total arrivals are kept at ~70% of total capacity.
inline UfcProblem make_random_problem(std::uint64_t seed, std::size_t m,
                                      std::size_t n) {
  Rng rng(seed);
  UfcProblem p;
  p.power = ServerPowerModel{100.0, 200.0};
  p.fuel_cell_price = rng.uniform(50.0, 110.0);
  p.latency_weight = 10.0;
  p.utility = std::make_shared<QuadraticUtility>();

  double total_capacity = 0.0;
  for (std::size_t j = 0; j < n; ++j) {
    DatacenterSpec dc;
    dc.name = "dc" + std::to_string(j);
    dc.servers = rng.uniform(500.0, 2000.0);
    dc.pue = rng.uniform(1.1, 1.5);
    dc.grid_price = rng.uniform(15.0, 120.0);
    dc.carbon_rate = rng.uniform(150.0, 950.0);
    dc.fuel_cell_capacity_mw =
        dc.servers * p.power.peak_watts * dc.pue / 1e6;
    dc.emission_cost =
        std::make_shared<AffineCarbonTax>(rng.uniform(0.0, 60.0));
    total_capacity += dc.servers;
    p.datacenters.push_back(std::move(dc));
  }

  const double total_arrivals = 0.7 * total_capacity;
  std::vector<double> shares = normal_shares(rng, static_cast<int>(m),
                                             total_arrivals, 0.4);
  p.arrivals = shares;

  p.latency_s = Mat(m, n);
  for (std::size_t i = 0; i < m; ++i)
    for (std::size_t j = 0; j < n; ++j)
      p.latency_s(i, j) = rng.uniform(0.002, 0.045);
  return p;
}

}  // namespace ufc::testing
