// End-to-end reproduction checks: the paper's headline qualitative claims
// must hold on the full one-week scenario (shape, not absolute numbers —
// see EXPERIMENTS.md for the quantitative comparison).
#include <gtest/gtest.h>

#include "sim/simulator.hpp"
#include "traces/scenario.hpp"
#include "util/stats.hpp"

namespace ufc::sim {
namespace {

// One shared full-week run (the solve is the expensive part; ~15 s total).
class PaperClaims : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    traces::ScenarioConfig config;
    scenario_ = new traces::Scenario(traces::Scenario::generate(config));
    SimulatorOptions options;  // paper-scale defaults
    comparison_ = new StrategyComparison(
        compare_strategies(*scenario_, options));
  }
  static void TearDownTestSuite() {
    delete comparison_;
    delete scenario_;
    comparison_ = nullptr;
    scenario_ = nullptr;
  }
  static traces::Scenario* scenario_;
  static StrategyComparison* comparison_;
};

traces::Scenario* PaperClaims::scenario_ = nullptr;
StrategyComparison* PaperClaims::comparison_ = nullptr;

TEST_F(PaperClaims, HybridNeverReducesUfcVersusGrid) {
  // §IV-B: "it never reduces the UFC".
  for (double improvement : comparison_->improvement_hg)
    EXPECT_GT(improvement, -1.0);
}

TEST_F(PaperClaims, HybridBringsLargePeakImprovements) {
  // §IV-B: improvements "up to 50% during electricity peak hours".
  EXPECT_GT(max_value(comparison_->improvement_hg), 25.0);
}

TEST_F(PaperClaims, FuelCellOnlySeverelyReducesUfcOffPeak) {
  // §IV-B: Fuel cell vs Grid "UFC reduction up to 150% during off-peak".
  EXPECT_LT(min_value(comparison_->improvement_fg), -60.0);
}

TEST_F(PaperClaims, HybridSubstantiallyBeatsFuelCellOnAverage) {
  // §IV-B: "more than 40% on average when compared with Fuel cell"
  // (we measure ~30-35% on synthetic traces; assert the strong direction).
  EXPECT_GT(comparison_->average_improvement_hf(), 20.0);
}

TEST_F(PaperClaims, LatencyOrderingMatchesFigure5) {
  // Fig. 5: FuelCell lowest (14-16 ms), Hybrid close, Grid highest (to 23 ms).
  const double fc = comparison_->fuel_cell.average_latency_ms();
  const double hybrid = comparison_->hybrid.average_latency_ms();
  const double grid = comparison_->grid.average_latency_ms();
  EXPECT_LT(fc, hybrid);
  EXPECT_LT(hybrid, grid);
  EXPECT_GT(fc, 10.0);
  EXPECT_LT(fc, 17.0);
  EXPECT_GT(max_value(comparison_->grid.latency_ms_series()), 19.0);
}

TEST_F(PaperClaims, FuelCellStrategyHasHighestEnergyCost) {
  // Fig. 6: fuel-cell-only is the most expensive strategy.
  EXPECT_GT(comparison_->fuel_cell.total_energy_cost(),
            comparison_->grid.total_energy_cost());
  EXPECT_GT(comparison_->fuel_cell.total_energy_cost(),
            comparison_->hybrid.total_energy_cost());
  // Hybrid arbitrage reduces energy cost markedly versus fuel-cell-only.
  EXPECT_LT(comparison_->hybrid.total_energy_cost(),
            0.7 * comparison_->fuel_cell.total_energy_cost());
}

TEST_F(PaperClaims, HybridCarbonCloseToGridAndBelowEnergyCost) {
  // Fig. 7: hybrid emits nearly as much as grid; carbon cost << energy cost.
  const double hybrid_carbon = comparison_->hybrid.total_carbon_cost();
  const double grid_carbon = comparison_->grid.total_carbon_cost();
  EXPECT_GT(hybrid_carbon, 0.5 * grid_carbon);
  EXPECT_LE(hybrid_carbon, grid_carbon * 1.02);
  EXPECT_LT(hybrid_carbon, 0.5 * comparison_->hybrid.total_energy_cost());
  // Fuel-cell-only is carbon-free (up to the solver's power-balance
  // tolerance, which leaves a sub-percent residual grid draw).
  EXPECT_LT(comparison_->fuel_cell.total_carbon_tons(),
            0.01 * comparison_->grid.total_carbon_tons());
}

TEST_F(PaperClaims, FuelCellsPoorlyUtilizedAtCurrentPrices) {
  // Fig. 8: wild fluctuation, low average (paper: 16.2%).
  const auto utilization = comparison_->hybrid.utilization_series();
  const double avg = mean(utilization);
  EXPECT_GT(avg, 0.05);
  EXPECT_LT(avg, 0.35);
  // Fluctuates between (near) zero and substantial values.
  EXPECT_LT(min_value(utilization), 0.01);
  EXPECT_GT(max_value(utilization), 0.4);
}

TEST_F(PaperClaims, ConvergenceWithinPaperBallpark) {
  // Fig. 11: most runs converge within ~100 iterations.
  const auto iters = comparison_->hybrid.iteration_series();
  EXPECT_LT(percentile(iters, 80), 200.0);
  EXPECT_GT(min_value(iters), 5.0);
  for (const auto& slot : comparison_->hybrid.slots)
    EXPECT_TRUE(slot.converged) << "slot " << slot.slot;
}

}  // namespace
}  // namespace ufc::sim
