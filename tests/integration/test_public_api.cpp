// The umbrella header must expose the whole public API self-consistently
// (no missing includes, no ODR surprises), and the README quickstart snippet
// must actually compile and run.
#include <gtest/gtest.h>

#include "ufc.hpp"

namespace {

TEST(PublicApi, ReadmeQuickstartCompilesAndRuns) {
  ufc::UfcProblem problem;
  problem.fuel_cell_price = 80.0;
  problem.latency_weight = 10.0;
  problem.utility = std::make_shared<ufc::QuadraticUtility>();

  ufc::DatacenterSpec dc;
  dc.servers = 2000;
  dc.pue = 1.2;
  dc.grid_price = 45.0;
  dc.carbon_rate = 500.0;
  dc.fuel_cell_capacity_mw = 0.48;
  dc.emission_cost = std::make_shared<ufc::AffineCarbonTax>(25.0);
  ufc::DatacenterSpec dc2 = dc;
  dc2.grid_price = 95.0;
  problem.datacenters = {dc, dc2};
  problem.arrivals = {800.0, 600.0};
  problem.latency_s = ufc::Mat(2, 2, 0.02);
  problem.latency_s(0, 0) = 0.008;
  problem.latency_s(1, 1) = 0.010;

  const auto report =
      ufc::admm::solve_strategy(problem, ufc::admm::Strategy::Hybrid);
  EXPECT_TRUE(report.converged);
  EXPECT_LT(report.breakdown.ufc, 0.0);
  EXPECT_NEAR(report.solution.lambda.row_sum(0), 800.0, 1e-3);
}

TEST(PublicApi, EveryLayerReachableThroughUmbrella) {
  // One symbol per layer proves the umbrella pulls everything in.
  EXPECT_EQ(ufc::fuel_carbon_factor(ufc::FuelType::Coal), 968.0);   // model
  EXPECT_EQ(ufc::admm::to_string(ufc::admm::Strategy::Grid), "Grid");  // admm
  EXPECT_EQ(ufc::traces::datacenter_sites().size(), 4u);            // traces
  EXPECT_TRUE(ufc::net::is_front_end(ufc::net::front_end_id(0)));   // net
  const ufc::sim::SimulatorOptions options;                         // sim
  EXPECT_EQ(options.stride, 1);
  ufc::Battery battery(ufc::BatterySpec{});                         // battery
  EXPECT_DOUBLE_EQ(battery.charge_mwh(), 0.0);
  EXPECT_DOUBLE_EQ(ufc::erlang_c_wait_probability(0.5, 1.0), 0.5);  // queueing
}

}  // namespace
