// Paper-scale integration of the message-passing runtime: on real scenario
// slots (M = 10, N = 4) the distributed protocol must match the monolithic
// solver exactly and its traffic must follow the Fig. 2 protocol counts.
#include <gtest/gtest.h>

#include "admm/admg.hpp"
#include "net/runtime.hpp"
#include "traces/scenario.hpp"

namespace ufc::net {
namespace {

class DistributedWeek : public ::testing::TestWithParam<int> {
 protected:
  static traces::Scenario make_scenario() {
    traces::ScenarioConfig config;
    return traces::Scenario::generate(config);
  }
};

TEST_P(DistributedWeek, MatchesMonolithicOnScenarioSlot) {
  const auto scenario = make_scenario();
  const auto problem = scenario.problem_at(GetParam());

  admm::AdmgOptions options;
  options.tolerance = 3e-3;
  options.max_iterations = 800;
  options.record_trace = false;

  const auto mono = admm::solve_admg(problem, options);
  DistributedOptions dist;
  dist.admg = options;
  const auto report = DistributedAdmgRuntime(problem, dist).run();

  EXPECT_TRUE(report.converged);
  EXPECT_EQ(report.iterations, mono.iterations);
  EXPECT_LT(max_abs_diff(report.solution.lambda, mono.solution.lambda), 1e-9);
  EXPECT_NEAR(report.breakdown.ufc, mono.breakdown.ufc,
              1e-9 * std::abs(mono.breakdown.ufc));

  // Protocol accounting: per round M*N proposals + M*N assignments +
  // (M + N) convergence reports.
  const std::uint64_t m = problem.num_front_ends();
  const std::uint64_t n = problem.num_datacenters();
  const auto rounds = static_cast<std::uint64_t>(report.iterations);
  EXPECT_EQ(report.network.messages, rounds * (2 * m * n + m + n));
  EXPECT_EQ(report.network.retransmissions, 0u);
}

INSTANTIATE_TEST_SUITE_P(Slots, DistributedWeek,
                         ::testing::Values(10, 64, 110, 160));

TEST(DistributedWeekLossy, HeavyLossStillMatchesExactly) {
  const auto scenario = traces::Scenario::generate({});
  const auto problem = scenario.problem_at(64);
  admm::AdmgOptions options;
  options.tolerance = 3e-3;
  options.max_iterations = 800;
  options.record_trace = false;

  DistributedOptions clean;
  clean.admg = options;
  DistributedOptions lossy;
  lossy.admg = options;
  lossy.loss_rate = 0.6;  // every message dropped ~1.5x on average
  lossy.loss_seed = 3;

  const auto a = DistributedAdmgRuntime(problem, clean).run();
  const auto b = DistributedAdmgRuntime(problem, lossy).run();
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(max_abs_diff(a.solution.lambda, b.solution.lambda), 0.0);
  // Loss shows up only in the transport counters.
  EXPECT_GT(b.network.retransmissions, b.network.messages / 2);
}

}  // namespace
}  // namespace ufc::net
