#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/config.hpp"
#include "util/contract.hpp"

namespace ufc {
namespace {

TEST(Config, ParsesSectionsAndKeys) {
  const auto config = Config::parse(
      "top = 1\n"
      "[scenario]\n"
      "seed = 42\n"
      "hours = 168\n"
      "[solver]\n"
      "rho = 10.5\n");
  EXPECT_EQ(config.size(), 4u);
  EXPECT_TRUE(config.has("top"));
  EXPECT_TRUE(config.has("scenario.seed"));
  EXPECT_EQ(config.get_int("scenario.hours", 0), 168);
  EXPECT_DOUBLE_EQ(config.get_double("solver.rho", 0.0), 10.5);
}

TEST(Config, TrimsWhitespaceAndComments) {
  const auto config = Config::parse(
      "# full comment\n"
      "  [ scenario ]  \n"
      "  name =  geo cloud   ; trailing comment\n"
      "\n"
      "empty_after_comment = 5 # note\n");
  EXPECT_EQ(config.get_string("scenario.name"), "geo cloud");
  EXPECT_EQ(config.get_int("scenario.empty_after_comment", 0), 5);
}

TEST(Config, DefaultsForMissingKeys) {
  const auto config = Config::parse("");
  EXPECT_EQ(config.get_string("missing", "dflt"), "dflt");
  EXPECT_DOUBLE_EQ(config.get_double("missing", 2.5), 2.5);
  EXPECT_EQ(config.get_int("missing", 7), 7);
  EXPECT_TRUE(config.get_bool("missing", true));
}

TEST(Config, BooleanForms) {
  const auto config = Config::parse(
      "a = true\nb = NO\nc = On\nd = 0\ne = YES\nf = off\n");
  EXPECT_TRUE(config.get_bool("a", false));
  EXPECT_FALSE(config.get_bool("b", true));
  EXPECT_TRUE(config.get_bool("c", false));
  EXPECT_FALSE(config.get_bool("d", true));
  EXPECT_TRUE(config.get_bool("e", false));
  EXPECT_FALSE(config.get_bool("f", true));
}

TEST(Config, MalformedInputThrows) {
  EXPECT_THROW(Config::parse("[unterminated\n"), ContractViolation);
  EXPECT_THROW(Config::parse("keywithoutvalue\n"), ContractViolation);
  EXPECT_THROW(Config::parse("= nokey\n"), ContractViolation);
  EXPECT_THROW(Config::parse("[]\n"), ContractViolation);
}

TEST(Config, TypeErrorsThrow) {
  const auto config = Config::parse("x = not-a-number\ny = 1.5z\nz = maybe\n");
  EXPECT_THROW(config.get_double("x", 0.0), ContractViolation);
  EXPECT_THROW(config.get_double("y", 0.0), ContractViolation);
  EXPECT_THROW(config.get_int("y", 0), ContractViolation);
  EXPECT_THROW(config.get_bool("z", false), ContractViolation);
}

TEST(Config, NumericOverflowThrowsInsteadOfSaturating) {
  // std::out_of_range is a std::logic_error, so overflow funnels into the
  // same ContractViolation as garbage text rather than escaping as a
  // different exception type (or worse, saturating silently).
  const auto config = Config::parse(
      "huge_double = 1e999\ntiny_double = -1e999\nhuge_int = 99999999999\n");
  EXPECT_THROW(config.get_double("huge_double", 0.0), ContractViolation);
  EXPECT_THROW(config.get_double("tiny_double", 0.0), ContractViolation);
  EXPECT_THROW(config.get_int("huge_int", 0), ContractViolation);
}

TEST(Config, IntGetterRejectsTrailingJunk) {
  const auto config = Config::parse("frac = 2.5\nhex = 0x10\nexp = 1e3\n");
  EXPECT_THROW(config.get_int("frac", 0), ContractViolation);
  EXPECT_THROW(config.get_int("hex", 0), ContractViolation);
  EXPECT_THROW(config.get_int("exp", 0), ContractViolation);
  // The same spellings are fine as doubles (except hex, which stod also
  // parses — pin that so a change in parsing strictness is visible).
  EXPECT_DOUBLE_EQ(config.get_double("frac", 0.0), 2.5);
  EXPECT_DOUBLE_EQ(config.get_double("exp", 0.0), 1000.0);
  EXPECT_DOUBLE_EQ(config.get_double("hex", 0.0), 16.0);
}

TEST(Config, WhitespacePaddedNumbersParseAfterTrim) {
  // Padding is removed by the parser, so the getters see clean tokens.
  const auto config = Config::parse("a =   42   \nb =\t6.25\t\n");
  EXPECT_EQ(config.get_int("a", 0), 42);
  EXPECT_DOUBLE_EQ(config.get_double("b", 0.0), 6.25);
}

TEST(Config, LastValueWinsOnDuplicates) {
  const auto config = Config::parse("k = 1\nk = 2\n");
  EXPECT_EQ(config.get_int("k", 0), 2);
}

TEST(Config, KeysAreSorted) {
  const auto config = Config::parse("b = 1\na = 2\n[s]\nc = 3\n");
  const auto keys = config.keys();
  ASSERT_EQ(keys.size(), 3u);
  EXPECT_EQ(keys[0], "a");
  EXPECT_EQ(keys[1], "b");
  EXPECT_EQ(keys[2], "s.c");
}

TEST(Config, LoadsFromFile) {
  const std::string path = ::testing::TempDir() + "ufc_config_test.ini";
  {
    std::ofstream out(path);
    out << "[scenario]\nseed = 7\n";
  }
  const auto config = Config::load(path);
  EXPECT_EQ(config.get_int("scenario.seed", 0), 7);
  std::remove(path.c_str());
}

TEST(Config, MissingFileThrows) {
  EXPECT_THROW(Config::load("/nonexistent/config.ini"), std::runtime_error);
}

}  // namespace
}  // namespace ufc
