#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>

#include "util/contract.hpp"
#include "util/csv.hpp"

namespace ufc {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

class CsvTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "ufc_csv_test.csv";
  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvTest, WritesHeaderAndRows) {
  {
    CsvWriter csv(path_, {"hour", "value"});
    csv.row({0.0, 1.5});
    csv.row({1.0, -2.25});
    EXPECT_EQ(csv.rows_written(), 2u);
  }
  EXPECT_EQ(read_file(path_), "hour,value\n0,1.5\n1,-2.25\n");
}

TEST_F(CsvTest, RowSizeMismatchThrows) {
  CsvWriter csv(path_, {"a", "b"});
  EXPECT_THROW(csv.row({1.0}), ContractViolation);
  EXPECT_THROW(csv.row({1.0, 2.0, 3.0}), ContractViolation);
}

TEST_F(CsvTest, StringRowsAreEscaped) {
  {
    CsvWriter csv(path_, {"name", "note"});
    csv.row_strings({"plain", "has,comma"});
    csv.row_strings({"quote\"inside", "multi\nline"});
  }
  EXPECT_EQ(read_file(path_),
            "name,note\nplain,\"has,comma\"\n\"quote\"\"inside\",\"multi\nline\"\n");
}

TEST(CsvEscape, PassesThroughPlainCells) {
  EXPECT_EQ(csv_escape("hello"), "hello");
}

TEST(CsvEscape, QuotesSpecialCells) {
  EXPECT_EQ(csv_escape("a,b"), "\"a,b\"");
  EXPECT_EQ(csv_escape("a\"b"), "\"a\"\"b\"");
}

TEST(CsvNumber, RoundTripsValues) {
  EXPECT_EQ(csv_number(1.0), "1");
  EXPECT_EQ(csv_number(0.5), "0.5");
  const double value = 0.1 + 0.2;
  EXPECT_DOUBLE_EQ(std::stod(csv_number(value)), value);
}

TEST(CsvNumber, NonFiniteUsesPinnedSpellings) {
  EXPECT_EQ(csv_number(std::numeric_limits<double>::quiet_NaN()), "nan");
  // The NaN sign bit is payload, not a value: both spell the same.
  EXPECT_EQ(csv_number(-std::numeric_limits<double>::quiet_NaN()), "nan");
  EXPECT_EQ(csv_number(std::numeric_limits<double>::infinity()), "inf");
  EXPECT_EQ(csv_number(-std::numeric_limits<double>::infinity()), "-inf");
}

TEST_F(CsvTest, NonFiniteCellsRoundTripThroughWriterAndReader) {
  // Regression: a diverged solve writes NaN/Inf residuals into its trace;
  // the file must stay readable by our own reader.
  {
    CsvWriter csv(path_, {"balance", "copy", "objective"});
    csv.row({std::numeric_limits<double>::quiet_NaN(),
             std::numeric_limits<double>::infinity(),
             -std::numeric_limits<double>::infinity()});
    csv.row({1.25, -3.5, 0.0});
  }
  const CsvTable table = read_csv(path_);
  ASSERT_EQ(table.num_rows(), 2u);
  EXPECT_TRUE(std::isnan(table.rows[0][0]));
  EXPECT_EQ(table.rows[0][1], std::numeric_limits<double>::infinity());
  EXPECT_EQ(table.rows[0][2], -std::numeric_limits<double>::infinity());
  EXPECT_DOUBLE_EQ(table.rows[1][0], 1.25);
}

TEST(CsvParse, AcceptsOnlyPinnedNonFiniteSpellings) {
  const CsvTable table = parse_csv("x\nnan\ninf\n-inf\n");
  ASSERT_EQ(table.num_rows(), 3u);
  EXPECT_TRUE(std::isnan(table.rows[0][0]));
  // Platform from_chars implementations disagree on these spellings, so the
  // parser must reject them everywhere rather than accept them somewhere.
  EXPECT_THROW(parse_csv("x\nNaN\n"), ContractViolation);
  EXPECT_THROW(parse_csv("x\nInfinity\n"), ContractViolation);
  EXPECT_THROW(parse_csv("x\nINF\n"), ContractViolation);
  EXPECT_THROW(parse_csv("x\nnan(0x1)\n"), ContractViolation);
}

TEST(CsvWriterErrors, UnopenablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent-dir/x.csv", {"a"}), std::runtime_error);
}

}  // namespace
}  // namespace ufc
