// ThreadPool semantics the ADM-G hot path depends on: deterministic chunking,
// full index coverage with disjoint writes, exception propagation, serial
// degradation, reuse across many parallel_for calls, and nested calls.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <stdexcept>
#include <vector>

#include "util/thread_pool.hpp"

namespace ufc::util {
namespace {

TEST(ThreadPool, EmptyRangeRunsNothing) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.parallel_for(0, 0, [&](std::size_t) { ++calls; });
  pool.parallel_for(7, 7, [&](std::size_t) { ++calls; });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPool, SingleItemRunsInline) {
  ThreadPool pool(4);
  std::vector<std::size_t> seen;
  // One item < two chunks: must degrade to an inline call (no data race on
  // the unsynchronized vector).
  pool.parallel_for(3, 4, [&](std::size_t i) { seen.push_back(i); });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(seen[0], 3u);
}

TEST(ThreadPool, SerialPoolHasNoWorkers) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  std::vector<int> hits(100, 0);  // unsynchronized: relies on serial execution
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.thread_count(), 4u);
  std::vector<std::atomic<int>> hits(1000);
  pool.parallel_for(0, hits.size(), [&](std::size_t i) { ++hits[i]; });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ChunksAreContiguousOrderedAndDeterministic) {
  ThreadPool pool(3);
  for (int round = 0; round < 2; ++round) {
    std::vector<std::array<std::size_t, 3>> chunks(pool.thread_count());
    std::atomic<std::size_t> used{0};
    pool.parallel_for_chunks(10, 33,
                             [&](std::size_t b, std::size_t e, std::size_t c) {
                               chunks[c] = {b, e, c};
                               ++used;
                             });
    // 23 items over 3 chunks: boundaries depend only on range and
    // thread_count, so both rounds see the identical partition.
    ASSERT_EQ(used.load(), 3u);
    EXPECT_EQ(chunks[0][0], 10u);
    EXPECT_EQ(chunks[0][1], chunks[1][0]);
    EXPECT_EQ(chunks[1][1], chunks[2][0]);
    EXPECT_EQ(chunks[2][1], 33u);
  }
}

TEST(ThreadPool, PropagatesBodyException) {
  ThreadPool pool(4);
  EXPECT_THROW(pool.parallel_for(0, 100,
                                 [](std::size_t i) {
                                   if (i == 57)
                                     throw std::runtime_error("bad item");
                                 }),
               std::runtime_error);
  // The pool survives a throwing body and keeps working.
  std::atomic<int> ok{0};
  pool.parallel_for(0, 100, [&](std::size_t) { ++ok; });
  EXPECT_EQ(ok.load(), 100);
}

TEST(ThreadPool, ExceptionFromCallerChunkAlsoPropagates) {
  ThreadPool pool(2);
  // Chunk 0 runs on the calling thread; make it the thrower.
  EXPECT_THROW(
      pool.parallel_for_chunks(0, 100,
                               [](std::size_t, std::size_t, std::size_t c) {
                                 if (c == 0) throw std::runtime_error("chunk0");
                               }),
      std::runtime_error);
}

TEST(ThreadPool, ReusableAcrossManyCalls) {
  ThreadPool pool(4);
  std::vector<double> out(256, 0.0);
  for (int round = 0; round < 50; ++round) {
    pool.parallel_for(0, out.size(),
                      [&](std::size_t i) { out[i] += static_cast<double>(i); });
  }
  for (std::size_t i = 0; i < out.size(); ++i)
    EXPECT_DOUBLE_EQ(out[i], 50.0 * static_cast<double>(i));
}

TEST(ThreadPool, NestedParallelForDoesNotDeadlock) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(64);
  // Outer tasks issue inner parallel_fors on the same pool; the waiting
  // chunk drains the queue, so this completes even with every worker busy.
  pool.parallel_for(0, 8, [&](std::size_t outer) {
    pool.parallel_for(0, 8, [&](std::size_t inner) {
      ++hits[outer * 8 + inner];
    });
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPool, ResolveThreadCount) {
  EXPECT_EQ(resolve_thread_count(1), 1u);
  EXPECT_EQ(resolve_thread_count(7), 7u);
  EXPECT_GE(resolve_thread_count(0), 1u);  // hardware concurrency, floored
}

}  // namespace
}  // namespace ufc::util
