#include <gtest/gtest.h>

#include <limits>
#include <vector>

#include "util/contract.hpp"
#include "util/stats.hpp"

namespace ufc {
namespace {

TEST(RunningStats, BasicMoments) {
  RunningStats s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(x);
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_NEAR(s.stddev(), 2.13809, 1e-4);
}

TEST(RunningStats, MergeMatchesSequential) {
  RunningStats a, b, all;
  const std::vector<double> xs = {1, -2, 3.5, 0.25, 8, -1.5, 2};
  for (std::size_t i = 0; i < xs.size(); ++i) {
    (i < 3 ? a : b).add(xs[i]);
    all.add(xs[i]);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-12);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-12);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptyIsIdentity) {
  RunningStats a, empty;
  a.add(1.0);
  a.add(2.0);
  a.merge(empty);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 1.5);
}

TEST(RunningStats, EmptyMeanThrows) {
  RunningStats s;
  EXPECT_THROW(s.mean(), ContractViolation);
}

TEST(Stats, MeanAndStddev) {
  const std::vector<double> xs = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(mean(xs), 2.5);
  EXPECT_NEAR(stddev(xs), 1.29099, 1e-5);
  EXPECT_DOUBLE_EQ(sum(xs), 10.0);
  EXPECT_DOUBLE_EQ(min_value(xs), 1.0);
  EXPECT_DOUBLE_EQ(max_value(xs), 4.0);
}

TEST(Stats, PercentileInterpolates) {
  const std::vector<double> xs = {4.0, 1.0, 3.0, 2.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(percentile(xs, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(percentile(xs, 25.0), 1.75);
}

TEST(Stats, PercentileSingleElement) {
  const std::vector<double> xs = {7.0};
  EXPECT_DOUBLE_EQ(percentile(xs, 37.0), 7.0);
}

TEST(Stats, EmpiricalCdfIsSortedAndEndsAtOne) {
  const std::vector<double> xs = {5.0, 1.0, 3.0};
  const auto cdf = empirical_cdf(xs);
  ASSERT_EQ(cdf.size(), 3u);
  EXPECT_DOUBLE_EQ(cdf[0].value, 1.0);
  EXPECT_DOUBLE_EQ(cdf[2].value, 5.0);
  EXPECT_NEAR(cdf[0].cumulative, 1.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(cdf[2].cumulative, 1.0);
}

TEST(Stats, ApproxEqual) {
  EXPECT_TRUE(approx_equal(1.0, 1.0 + 1e-12));
  EXPECT_FALSE(approx_equal(1.0, 1.001));
  EXPECT_TRUE(approx_equal(1.0, 1.001, 0.01));
  EXPECT_TRUE(approx_equal(0.0, 0.0));
}

TEST(Stats, EmptyInputsThrow) {
  const std::vector<double> empty;
  EXPECT_THROW(mean(empty), ContractViolation);
  EXPECT_THROW(percentile(empty, 50.0), ContractViolation);
  EXPECT_THROW(empirical_cdf(empty), ContractViolation);
}

TEST(Stats, PercentileRejectsNonFiniteSamples) {
  // Regression: a NaN violates std::sort's strict weak ordering, silently
  // scrambling the order statistics instead of failing; the guard turns
  // that into a contract violation.
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(percentile(std::vector<double>{1.0, nan, 3.0}, 50.0),
               ContractViolation);
  EXPECT_THROW(percentile(std::vector<double>{nan}, 0.0), ContractViolation);
  EXPECT_THROW(percentile(std::vector<double>{1.0, inf}, 95.0),
               ContractViolation);
  EXPECT_THROW(percentile(std::vector<double>{-inf, 1.0}, 5.0),
               ContractViolation);
}

TEST(Stats, EmpiricalCdfRejectsNonFiniteSamples) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_THROW(empirical_cdf(std::vector<double>{nan, 2.0}),
               ContractViolation);
  EXPECT_THROW(empirical_cdf(std::vector<double>{2.0, inf}),
               ContractViolation);
}

}  // namespace
}  // namespace ufc
