// The [output] config section (util/paths.hpp): driver CSV outputs route
// through one output-directory option instead of littering the cwd.
#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "util/config.hpp"
#include "util/contract.hpp"
#include "util/paths.hpp"

namespace ufc::util {
namespace {

TEST(OutputPath, NoConfiguredDirectoryIsAPassThrough) {
  EXPECT_EQ(output_path(Config{}, "ufc_simulate.csv"), "ufc_simulate.csv");
}

TEST(OutputPath, PrefixesAndCreatesTheConfiguredDirectory) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "ufc_paths_test" / "nested";
  std::filesystem::remove_all(dir.parent_path());
  const Config config =
      Config::parse("[output]\ndir = " + dir.string() + "\n");
  const std::string resolved = output_path(config, "ufc_traces.csv");
  EXPECT_EQ(resolved, (dir / "ufc_traces.csv").string());
  EXPECT_TRUE(std::filesystem::is_directory(dir));
  std::filesystem::remove_all(dir.parent_path());
}

TEST(OutputPath, AbsoluteNamesBypassTheDirectory) {
  const Config config = Config::parse("[output]\ndir = somewhere\n");
  const std::string absolute =
      (std::filesystem::temp_directory_path() / "explicit.csv").string();
  EXPECT_EQ(output_path(config, absolute), absolute);
  EXPECT_FALSE(std::filesystem::exists("somewhere"));
}

TEST(OutputPath, EmptyNameThrows) {
  EXPECT_THROW(output_path(Config{}, ""), ContractViolation);
}

}  // namespace
}  // namespace ufc::util
