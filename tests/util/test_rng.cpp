#include <gtest/gtest.h>

#include <cmath>

#include "util/contract.hpp"
#include "util/rng.hpp"
#include "util/stats.hpp"

namespace ufc {
namespace {

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++equal;
  EXPECT_LT(equal, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformRangeRespectsBounds) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.uniform(-3.0, 5.5);
    EXPECT_GE(u, -3.0);
    EXPECT_LT(u, 5.5);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  RunningStats stats;
  for (int i = 0; i < 20000; ++i) stats.add(rng.uniform());
  EXPECT_NEAR(stats.mean(), 0.5, 0.01);
}

TEST(Rng, UniformIntCoversRangeInclusive) {
  Rng rng(13);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 1000; ++i) {
    const auto v = rng.uniform_int(2, 5);
    EXPECT_GE(v, 2);
    EXPECT_LE(v, 5);
    saw_lo |= (v == 2);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, NormalMomentsMatch) {
  Rng rng(17);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.normal(3.0, 2.0));
  EXPECT_NEAR(stats.mean(), 3.0, 0.05);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.05);
}

TEST(Rng, TruncatedNormalStaysInBounds) {
  Rng rng(19);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.truncated_normal(0.0, 1.0, -0.5, 0.5);
    EXPECT_GE(v, -0.5);
    EXPECT_LE(v, 0.5);
  }
}

TEST(Rng, TruncatedNormalDegenerateIntervalClamps) {
  Rng rng(23);
  // Interval far from the mean forces the clamping fallback.
  const double v = rng.truncated_normal(0.0, 0.01, 100.0, 101.0);
  EXPECT_GE(v, 100.0);
  EXPECT_LE(v, 101.0);
}

TEST(Rng, LogNormalIsPositive) {
  Rng rng(29);
  for (int i = 0; i < 1000; ++i) EXPECT_GT(rng.log_normal(0.0, 0.5), 0.0);
}

TEST(Rng, BernoulliFrequencyMatchesP) {
  Rng rng(31);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, BernoulliDegenerateProbabilities) {
  Rng rng(37);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, ExponentialMeanMatchesRate) {
  Rng rng(41);
  RunningStats stats;
  for (int i = 0; i < 50000; ++i) stats.add(rng.exponential(2.0));
  EXPECT_NEAR(stats.mean(), 0.5, 0.02);
}

TEST(Rng, ExponentialRejectsNonPositiveRate) {
  Rng rng(43);
  EXPECT_THROW(rng.exponential(0.0), ContractViolation);
}

TEST(Rng, ForkedStreamsAreIndependentAndDeterministic) {
  Rng base(99);
  Rng f1 = base.fork(1);
  Rng f2 = base.fork(2);
  Rng f1_again = base.fork(1);
  EXPECT_EQ(f1.next_u64(), f1_again.next_u64());
  EXPECT_NE(f1.next_u64(), f2.next_u64());
}

TEST(Rng, ForkDoesNotAdvanceParent) {
  Rng a(5), b(5);
  (void)a.fork(7);
  EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(NormalShares, SumsToTotal) {
  Rng rng(3);
  const auto shares = normal_shares(rng, 10, 42.0, 0.4);
  double total = 0.0;
  for (double s : shares) total += s;
  EXPECT_NEAR(total, 42.0, 1e-9);
}

TEST(NormalShares, AllPositive) {
  Rng rng(3);
  const auto shares = normal_shares(rng, 50, 1.0, 1.5);  // heavy dispersion
  for (double s : shares) EXPECT_GT(s, 0.0);
}

TEST(NormalShares, SingleFrontEndGetsEverything) {
  Rng rng(3);
  const auto shares = normal_shares(rng, 1, 7.0, 0.4);
  ASSERT_EQ(shares.size(), 1u);
  EXPECT_NEAR(shares[0], 7.0, 1e-12);
}

}  // namespace
}  // namespace ufc
