#include <gtest/gtest.h>

#include "util/logging.hpp"

namespace ufc::log {
namespace {

class LoggingTest : public ::testing::Test {
 protected:
  Level saved_ = level();
  void TearDown() override { set_level(saved_); }
};

TEST_F(LoggingTest, LevelRoundTrips) {
  set_level(Level::Debug);
  EXPECT_EQ(level(), Level::Debug);
  set_level(Level::Error);
  EXPECT_EQ(level(), Level::Error);
}

TEST_F(LoggingTest, EmitBelowThresholdDoesNotCrash) {
  set_level(Level::Off);
  // All of these are filtered; the test asserts they are safe to call.
  debug("debug ", 1);
  info("info ", 2.5);
  warn("warn ", "x");
  error("error");
}

TEST_F(LoggingTest, ConcatenationAcceptsMixedTypes) {
  set_level(Level::Debug);
  ::testing::internal::CaptureStderr();
  info("value=", 42, " ratio=", 1.5);
  const std::string captured = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(captured.find("value=42 ratio=1.5"), std::string::npos);
  EXPECT_NE(captured.find("[info ]"), std::string::npos);
}

TEST_F(LoggingTest, FilteredMessagesProduceNoOutput) {
  set_level(Level::Error);
  ::testing::internal::CaptureStderr();
  info("should not appear");
  warn("also hidden");
  EXPECT_EQ(::testing::internal::GetCapturedStderr(), "");
}

}  // namespace
}  // namespace ufc::log
