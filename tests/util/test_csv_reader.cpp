#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "util/contract.hpp"
#include "util/csv.hpp"

namespace ufc {
namespace {

TEST(CsvReader, ParsesHeaderAndNumericRows) {
  const auto table = parse_csv("a,b,c\n1,2.5,-3\n4,5e-2,6\n");
  ASSERT_EQ(table.num_columns(), 3u);
  ASSERT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.header[1], "b");
  EXPECT_DOUBLE_EQ(table.rows[0][1], 2.5);
  EXPECT_DOUBLE_EQ(table.rows[1][0], 4.0);
  EXPECT_DOUBLE_EQ(table.rows[1][1], 0.05);
}

TEST(CsvReader, ColumnLookup) {
  const auto table = parse_csv("hour,price\n0,10\n1,20\n");
  EXPECT_EQ(table.column("price"), 1u);
  const auto prices = table.column_values("price");
  ASSERT_EQ(prices.size(), 2u);
  EXPECT_DOUBLE_EQ(prices[1], 20.0);
  EXPECT_THROW(table.column("missing"), ContractViolation);
}

TEST(CsvReader, QuotedHeadersWithCommas) {
  const auto table = parse_csv("\"price, $\",\"say \"\"hi\"\"\"\n1,2\n");
  EXPECT_EQ(table.header[0], "price, $");
  EXPECT_EQ(table.header[1], "say \"hi\"");
}

TEST(CsvReader, RaggedRowsThrow) {
  EXPECT_THROW(parse_csv("a,b\n1\n"), ContractViolation);
  EXPECT_THROW(parse_csv("a,b\n1,2,3\n"), ContractViolation);
}

TEST(CsvReader, NonNumericDataThrows) {
  EXPECT_THROW(parse_csv("a\nhello\n"), ContractViolation);
  EXPECT_THROW(parse_csv("a\n1.5x\n"), ContractViolation);
}

TEST(CsvReader, EmptyInputThrows) {
  EXPECT_THROW(parse_csv(""), ContractViolation);
}

TEST(CsvReader, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv("\"open\n1\n"), ContractViolation);
}

TEST(CsvReader, RoundTripsWriterOutput) {
  const std::string path = ::testing::TempDir() + "ufc_csv_roundtrip.csv";
  {
    CsvWriter writer(path, {"hour", "value"});
    writer.row({0.0, 1.25});
    writer.row({1.0, -2.5});
    writer.row({2.0, 1e-9});
  }
  const auto table = read_csv(path);
  EXPECT_EQ(table.num_rows(), 3u);
  EXPECT_DOUBLE_EQ(table.rows[0][1], 1.25);
  EXPECT_DOUBLE_EQ(table.rows[2][1], 1e-9);
  std::remove(path.c_str());
}

TEST(CsvReader, MissingFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/file.csv"), std::runtime_error);
}

}  // namespace
}  // namespace ufc
