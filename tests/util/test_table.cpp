#include <gtest/gtest.h>

#include "util/contract.hpp"
#include "util/table.hpp"

namespace ufc {
namespace {

TEST(TablePrinter, RendersAlignedColumns) {
  TablePrinter table({"Strategy", "Cost"});
  table.add_row({"Grid", "9644"});
  table.add_row({"Fuel Cell", "27957"});
  const std::string out = table.to_string();
  EXPECT_NE(out.find("| Strategy  | Cost  |"), std::string::npos);
  EXPECT_NE(out.find("| Grid      | 9644  |"), std::string::npos);
  EXPECT_NE(out.find("| Fuel Cell | 27957 |"), std::string::npos);
}

TEST(TablePrinter, NumericRowFormatsWithPrecision) {
  TablePrinter table({"name", "x", "y"});
  table.add_row("row", {1.23456, -2.0}, 2);
  const std::string out = table.to_string();
  EXPECT_NE(out.find("1.23"), std::string::npos);
  EXPECT_NE(out.find("-2.00"), std::string::npos);
}

TEST(TablePrinter, RowWidthMismatchThrows) {
  TablePrinter table({"a", "b"});
  EXPECT_THROW(table.add_row({"only-one"}), ContractViolation);
  EXPECT_THROW(table.add_row("label", {1.0, 2.0}), ContractViolation);
}

TEST(TablePrinter, EmptyHeaderThrows) {
  EXPECT_THROW(TablePrinter({}), ContractViolation);
}

TEST(Fixed, FormatsDecimals) {
  EXPECT_EQ(fixed(3.14159, 2), "3.14");
  EXPECT_EQ(fixed(-1.0, 0), "-1");
  EXPECT_EQ(fixed(2.5, 3), "2.500");
}

}  // namespace
}  // namespace ufc
