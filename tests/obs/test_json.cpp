// obs::JsonValue: deterministic emission, round-trip parsing, the pinned
// non-finite encoding shared with the CSV layer, and the contract surface.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <limits>
#include <string>

#include "obs/json.hpp"
#include "util/contract.hpp"

namespace ufc::obs {
namespace {

TEST(Json, DefaultConstructedIsNull) {
  const JsonValue value;
  EXPECT_TRUE(value.is_null());
  EXPECT_EQ(value.dump(0), "null");
}

TEST(Json, ScalarsDumpAsExpected) {
  EXPECT_EQ(JsonValue(true).dump(0), "true");
  EXPECT_EQ(JsonValue(false).dump(0), "false");
  EXPECT_EQ(JsonValue(42).dump(0), "42");
  EXPECT_EQ(JsonValue(std::int64_t{-7}).dump(0), "-7");
  EXPECT_EQ(JsonValue(1.5).dump(0), "1.5");
  EXPECT_EQ(JsonValue("hi").dump(0), "\"hi\"");
}

TEST(Json, Uint64BeyondInt64Throws) {
  EXPECT_EQ(JsonValue(std::uint64_t{7}).as_int(), 7);
  EXPECT_THROW(JsonValue(std::numeric_limits<std::uint64_t>::max()),
               ContractViolation);
}

TEST(Json, ObjectKeepsInsertionOrderAndReplacesInPlace) {
  JsonValue object = JsonValue::object();
  object.set("zebra", JsonValue(1));
  object.set("alpha", JsonValue(2));
  object.set("zebra", JsonValue(3));  // replace, keep position
  EXPECT_EQ(object.dump(0), "{\"zebra\":3,\"alpha\":2}");
  EXPECT_EQ(object.size(), 2u);
  EXPECT_EQ(object.at("zebra").as_int(), 3);
  EXPECT_EQ(object.find("missing"), nullptr);
  EXPECT_THROW(object.at("missing"), ContractViolation);
}

TEST(Json, ArrayAppendsAndBoundsChecks) {
  JsonValue array = JsonValue::array();
  array.push_back(JsonValue(1));
  array.push_back(JsonValue("two"));
  ASSERT_EQ(array.size(), 2u);
  EXPECT_EQ(array.at(0).as_int(), 1);
  EXPECT_EQ(array.at(1).as_string(), "two");
  EXPECT_THROW(array.at(2), ContractViolation);
}

TEST(Json, NullPromotesOnFirstMutation) {
  JsonValue becomes_array;
  becomes_array.push_back(JsonValue(1));
  EXPECT_TRUE(becomes_array.is_array());

  JsonValue becomes_object;
  becomes_object.set("k", JsonValue(1));
  EXPECT_TRUE(becomes_object.is_object());
}

TEST(Json, WrongTypeAccessorsThrow) {
  const JsonValue number(1.0);
  EXPECT_THROW((void)number.as_string(), ContractViolation);
  EXPECT_THROW((void)number.as_bool(), ContractViolation);
  EXPECT_THROW((void)number.as_int(), ContractViolation);  // Double, not Int
  const JsonValue integer(3);
  EXPECT_DOUBLE_EQ(integer.as_double(), 3.0);  // Int widens to double
}

TEST(Json, NonFiniteDoublesUsePinnedStringEncoding) {
  constexpr double inf = std::numeric_limits<double>::infinity();
  EXPECT_EQ(JsonValue(std::nan("")).dump(0), "\"nan\"");
  EXPECT_EQ(JsonValue(inf).dump(0), "\"inf\"");
  EXPECT_EQ(JsonValue(-inf).dump(0), "\"-inf\"");
}

TEST(Json, DoublesRoundTripBitExactly) {
  const double values[] = {0.1, 1.0 / 3.0, 1e-300, -2.5e17,
                           0x1.419497d9a6666p-20};
  for (const double value : values) {
    const JsonValue parsed = JsonValue::parse(JsonValue(value).dump(0));
    EXPECT_EQ(parsed.as_double(), value);
  }
}

TEST(Json, ParseHandlesNestedDocuments) {
  const JsonValue doc = JsonValue::parse(
      R"({"a": [1, 2.5, "x"], "b": {"c": true, "d": null}, "e": -3})");
  EXPECT_EQ(doc.at("a").at(0).as_int(), 1);
  EXPECT_DOUBLE_EQ(doc.at("a").at(1).as_double(), 2.5);
  EXPECT_EQ(doc.at("a").at(2).as_string(), "x");
  EXPECT_TRUE(doc.at("b").at("c").as_bool());
  EXPECT_TRUE(doc.at("b").at("d").is_null());
  EXPECT_EQ(doc.at("e").as_int(), -3);
}

TEST(Json, ParseRejectsMalformedInput) {
  EXPECT_THROW(JsonValue::parse(""), ContractViolation);
  EXPECT_THROW(JsonValue::parse("{"), ContractViolation);
  EXPECT_THROW(JsonValue::parse("[1,]"), ContractViolation);
  EXPECT_THROW(JsonValue::parse("{\"a\" 1}"), ContractViolation);
  EXPECT_THROW(JsonValue::parse("nul"), ContractViolation);
  EXPECT_THROW(JsonValue::parse("1 2"), ContractViolation);  // trailing garbage
  EXPECT_THROW(JsonValue::parse("\"unterminated"), ContractViolation);
}

TEST(Json, StringEscapesRoundTrip) {
  const std::string text = "quote \" backslash \\ newline \n tab \t";
  const JsonValue parsed = JsonValue::parse(JsonValue(text).dump(0));
  EXPECT_EQ(parsed.as_string(), text);
}

TEST(Json, DumpRoundTripsThroughParseStructurally) {
  JsonValue doc = JsonValue::object();
  doc.set("name", JsonValue("run"));
  doc.set("values", JsonValue::array());
  JsonValue values = JsonValue::array();
  values.push_back(JsonValue(1));
  values.push_back(JsonValue(0.25));
  doc.set("values", std::move(values));
  const JsonValue reparsed = JsonValue::parse(doc.dump());
  EXPECT_EQ(reparsed.dump(), doc.dump());
}

TEST(Json, FileRoundTripAndMissingFileThrows) {
  const std::string path = ::testing::TempDir() + "obs_json_roundtrip.json";
  JsonValue doc = JsonValue::object();
  doc.set("k", JsonValue(99));
  write_json_file(path, doc);
  const JsonValue loaded = read_json_file(path);
  EXPECT_EQ(loaded.at("k").as_int(), 99);
  std::remove(path.c_str());
  EXPECT_THROW(read_json_file(path), std::runtime_error);
}

}  // namespace
}  // namespace ufc::obs
