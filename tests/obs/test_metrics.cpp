// obs::MetricsRegistry: instrument semantics, merge laws (the sweep
// aggregation contract), kind collisions and the JSON snapshot shape.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

#include "obs/metrics.hpp"
#include "util/contract.hpp"

namespace ufc::obs {
namespace {

TEST(Metrics, CounterAddsAndMerges) {
  Counter a;
  a.add();
  a.add(4);
  EXPECT_EQ(a.value(), 5u);
  Counter b;
  b.add(10);
  a.merge(b);
  EXPECT_EQ(a.value(), 15u);
}

TEST(Metrics, GaugeMergeIsLastWriterWins) {
  Gauge a;
  a.set(1.0);
  Gauge b;
  b.set(2.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.value(), 2.0);
}

TEST(Metrics, HistogramBucketsValuesAtBoundaries) {
  Histogram h({1.0, 2.0, 4.0});
  // Buckets: (-inf,1], (1,2], (2,4], (4,+inf).
  h.observe(0.5);
  h.observe(1.0);  // boundary lands in the lower bucket
  h.observe(1.5);
  h.observe(4.0);
  h.observe(100.0);
  const std::vector<std::uint64_t> want = {2, 1, 1, 1};
  EXPECT_EQ(h.bucket_counts(), want);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_DOUBLE_EQ(h.sum(), 0.5 + 1.0 + 1.5 + 4.0 + 100.0);
}

TEST(Metrics, HistogramRejectsBadBoundariesAndNonFiniteSamples) {
  EXPECT_THROW(Histogram({}), ContractViolation);
  EXPECT_THROW(Histogram({1.0, 1.0}), ContractViolation);  // not increasing
  EXPECT_THROW(Histogram({2.0, 1.0}), ContractViolation);
  EXPECT_THROW(Histogram({0.0, std::numeric_limits<double>::infinity()}),
               ContractViolation);

  Histogram h({1.0});
  EXPECT_THROW(h.observe(std::nan("")), ContractViolation);
  EXPECT_THROW(h.observe(std::numeric_limits<double>::infinity()),
               ContractViolation);
}

TEST(Metrics, HistogramMergeAddsBucketWise) {
  Histogram a({1.0, 2.0});
  a.observe(0.5);
  a.observe(1.5);
  Histogram b({1.0, 2.0});
  b.observe(1.5);
  b.observe(3.0);
  a.merge(b);
  const std::vector<std::uint64_t> want = {1, 2, 1};
  EXPECT_EQ(a.bucket_counts(), want);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_DOUBLE_EQ(a.sum(), 0.5 + 1.5 + 1.5 + 3.0);

  Histogram incompatible({1.0, 3.0});
  EXPECT_THROW(a.merge(incompatible), ContractViolation);
}

TEST(Metrics, RegistryFindsOrCreatesAndChecksKinds) {
  MetricsRegistry registry;
  registry.counter("events").add(2);
  registry.counter("events").add(3);  // same instrument
  EXPECT_EQ(registry.counter("events").value(), 5u);

  registry.gauge("level").set(1.5);
  registry.histogram("lat", {1.0}).observe(0.5);
  EXPECT_EQ(registry.size(), 3u);
  EXPECT_FALSE(registry.empty());

  // Same name as a different kind is a contract violation.
  EXPECT_THROW(registry.gauge("events"), ContractViolation);
  EXPECT_THROW(registry.counter("lat"), ContractViolation);
  EXPECT_THROW(registry.histogram("level", {1.0}), ContractViolation);
  // Same histogram with different boundaries too.
  EXPECT_THROW(registry.histogram("lat", {2.0}), ContractViolation);

  EXPECT_NE(registry.find_counter("events"), nullptr);
  EXPECT_EQ(registry.find_counter("level"), nullptr);  // wrong kind
  EXPECT_EQ(registry.find_gauge("absent"), nullptr);
  EXPECT_NE(registry.find_histogram("lat"), nullptr);
}

TEST(Metrics, RegistryMergeIsDeterministicSlotOrderAggregation) {
  // Simulates the sweep: each slot records into its own registry; the
  // aggregate merges them serially in slot order.
  MetricsRegistry slot0;
  slot0.counter("solver.iterations").add(10);
  slot0.gauge("solver.last.objective").set(-1.0);
  slot0.histogram("t", {1.0}).observe(0.5);

  MetricsRegistry slot1;
  slot1.counter("solver.iterations").add(32);
  slot1.gauge("solver.last.objective").set(-2.0);
  slot1.histogram("t", {1.0}).observe(2.0);
  slot1.counter("solver.fallbacks").add(1);  // only in slot 1

  MetricsRegistry total;
  total.merge(slot0);
  total.merge(slot1);
  EXPECT_EQ(total.counter("solver.iterations").value(), 42u);
  EXPECT_EQ(total.counter("solver.fallbacks").value(), 1u);
  // Gauge: last merge wins — slot 1's value.
  EXPECT_DOUBLE_EQ(total.gauge("solver.last.objective").value(), -2.0);
  const std::vector<std::uint64_t> want = {1, 1};
  EXPECT_EQ(total.find_histogram("t")->bucket_counts(), want);
}

TEST(Metrics, ToJsonSortsInstrumentsAndOmitsEmptySections) {
  MetricsRegistry registry;
  registry.counter("b.count").add(1);
  registry.counter("a.count").add(2);
  const JsonValue snapshot = registry.to_json();
  ASSERT_TRUE(snapshot.is_object());
  EXPECT_TRUE(snapshot.contains("counters"));
  EXPECT_FALSE(snapshot.contains("gauges"));      // empty section omitted
  EXPECT_FALSE(snapshot.contains("histograms"));  // empty section omitted
  const auto& counters = snapshot.at("counters");
  ASSERT_EQ(counters.size(), 2u);
  EXPECT_EQ(counters.members()[0].first, "a.count");  // sorted by name
  EXPECT_EQ(counters.members()[1].first, "b.count");

  registry.histogram("h", {1.0, 2.0}).observe(1.5);
  const JsonValue with_histogram = registry.to_json();
  const auto& h = with_histogram.at("histograms").at("h");
  EXPECT_EQ(h.at("count").as_int(), 1);
  EXPECT_EQ(h.at("boundaries").size(), 2u);
  EXPECT_EQ(h.at("bucket_counts").size(), 3u);
  EXPECT_EQ(h.at("bucket_counts").at(1).as_int(), 1);
}

TEST(Metrics, DefaultTimeBoundariesAreDecadesFromMicrosecondsToTenSeconds) {
  const auto& boundaries = default_time_boundaries();
  ASSERT_EQ(boundaries.size(), 8u);
  EXPECT_DOUBLE_EQ(boundaries.front(), 1e-6);
  EXPECT_DOUBLE_EQ(boundaries.back(), 10.0);
  for (std::size_t k = 1; k < boundaries.size(); ++k)
    EXPECT_GT(boundaries[k], boundaries[k - 1]);
}

}  // namespace
}  // namespace ufc::obs
