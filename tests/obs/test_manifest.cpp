// Run manifests and the bench artifact: schema markers, section building,
// solve-core serialization, and BENCH_ufc.json's replace-by-name update.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "admm/solve_core.hpp"
#include "net/link_stats.hpp"
#include "obs/manifest.hpp"
#include "util/contract.hpp"

namespace ufc::obs {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + name;
}

TEST(RunManifest, StartsWithSchemaAndKeepsSectionOrder) {
  RunManifest manifest;
  manifest.set("command", JsonValue("solve"));
  manifest.set("slot", JsonValue(64));
  const JsonValue& doc = manifest.json();
  ASSERT_GE(doc.size(), 3u);
  EXPECT_EQ(doc.members()[0].first, "schema");
  EXPECT_EQ(doc.at("schema").as_string(), kRunManifestSchema);
  EXPECT_EQ(doc.members()[1].first, "command");
  EXPECT_EQ(doc.members()[2].first, "slot");
}

TEST(RunManifest, SetMetricsSnapshotsTheRegistry) {
  MetricsRegistry registry;
  registry.counter("solver.iterations").add(62);
  RunManifest manifest;
  manifest.set_metrics(registry);
  EXPECT_EQ(manifest.json()
                .at("metrics")
                .at("counters")
                .at("solver.iterations")
                .as_int(),
            62);
}

TEST(RunManifest, WriteReadRoundTrip) {
  const std::string path = temp_path("manifest_roundtrip.json");
  RunManifest manifest;
  manifest.set("command", JsonValue("simulate"));
  manifest.write(path);
  const RunManifest loaded = RunManifest::read(path);
  EXPECT_EQ(loaded.json().at("command").as_string(), "simulate");
  EXPECT_EQ(loaded.json().at("schema").as_string(), kRunManifestSchema);
  std::remove(path.c_str());
}

TEST(RunManifest, ReadRejectsWrongSchema) {
  const std::string path = temp_path("manifest_bad_schema.json");
  JsonValue bogus = JsonValue::object();
  bogus.set("schema", JsonValue("something-else"));
  write_json_file(path, bogus);
  EXPECT_THROW(RunManifest::read(path), ContractViolation);

  JsonValue no_schema = JsonValue::object();
  no_schema.set("command", JsonValue("solve"));
  write_json_file(path, no_schema);
  EXPECT_THROW(RunManifest::read(path), ContractViolation);
  std::remove(path.c_str());
}

TEST(Manifest, SolveCoreJsonCarriesResultAndBreakdown) {
  admm::SolveCore core;
  core.iterations = 62;
  core.converged = true;
  core.balance_residual = 1.25e-6;
  core.copy_residual = 2.5e-8;
  core.breakdown.ufc = -22.6;
  core.breakdown.utilization = 0.68;
  core.trace.objective = {1.0, 2.0, 3.0};

  const JsonValue section = solve_core_json(core);
  EXPECT_EQ(section.at("iterations").as_int(), 62);
  EXPECT_TRUE(section.at("converged").as_bool());
  EXPECT_DOUBLE_EQ(section.at("balance_residual").as_double(), 1.25e-6);
  EXPECT_DOUBLE_EQ(section.at("copy_residual").as_double(), 2.5e-8);
  EXPECT_EQ(section.at("watchdog_verdict").as_string(), "healthy");
  EXPECT_FALSE(section.at("fallback_centralized").as_bool());
  EXPECT_EQ(section.at("trace_length").as_int(), 3);
  EXPECT_DOUBLE_EQ(section.at("breakdown").at("ufc").as_double(), -22.6);
  EXPECT_DOUBLE_EQ(section.at("breakdown").at("utilization").as_double(),
                   0.68);
}

TEST(Manifest, LinkStatsJsonCountsTraffic) {
  net::LinkStats stats;
  stats.messages = 100;
  stats.bytes = 4096;
  stats.retransmissions = 3;
  const JsonValue section = link_stats_json(stats);
  EXPECT_EQ(section.at("messages").as_int(), 100);
  EXPECT_EQ(section.at("bytes").as_int(), 4096);
  EXPECT_EQ(section.at("retransmissions").as_int(), 3);
  EXPECT_EQ(section.at("delivery_failures").as_int(), 0);
}

TEST(BenchArtifact, CreatesReplacesAndAppendsEntriesByName) {
  const std::string path = temp_path("bench_artifact.json");
  std::remove(path.c_str());

  JsonValue first = JsonValue::object();
  first.set("runs", JsonValue(168));
  update_bench_artifact(path, "fig11", std::move(first));

  JsonValue doc = read_json_file(path);
  EXPECT_EQ(doc.at("schema").as_string(), kBenchArtifactSchema);
  ASSERT_EQ(doc.at("benchmarks").size(), 1u);
  EXPECT_EQ(doc.at("benchmarks").at(0).at("name").as_string(), "fig11");
  EXPECT_EQ(doc.at("benchmarks").at(0).at("metrics").at("runs").as_int(), 168);

  // A second bench appends; re-running the first replaces in place.
  JsonValue second = JsonValue::object();
  second.set("speedup", JsonValue(3.5));
  update_bench_artifact(path, "scaling", std::move(second));
  JsonValue rerun = JsonValue::object();
  rerun.set("runs", JsonValue(42));
  update_bench_artifact(path, "fig11", std::move(rerun));

  doc = read_json_file(path);
  ASSERT_EQ(doc.at("benchmarks").size(), 2u);
  EXPECT_EQ(doc.at("benchmarks").at(0).at("name").as_string(), "fig11");
  EXPECT_EQ(doc.at("benchmarks").at(0).at("metrics").at("runs").as_int(), 42);
  EXPECT_EQ(doc.at("benchmarks").at(1).at("name").as_string(), "scaling");
  std::remove(path.c_str());
}

TEST(BenchArtifact, RefusesToClobberForeignJson) {
  const std::string path = temp_path("bench_foreign.json");
  JsonValue foreign = JsonValue::object();
  foreign.set("schema", JsonValue("not-a-bench-artifact"));
  write_json_file(path, foreign);
  EXPECT_THROW(update_bench_artifact(path, "x", JsonValue::object()),
               ContractViolation);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace ufc::obs
