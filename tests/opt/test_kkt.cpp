#include <gtest/gtest.h>

#include "math/projections.hpp"
#include "opt/kkt.hpp"
#include "util/contract.hpp"

namespace ufc {
namespace {

TEST(FirstOrderCheck, PassesAtConstrainedOptimum) {
  // min 0.5||x - (2, -1)||^2 over [0,1]^2: optimum (1, 0).
  auto grad = [](const Vec& x) { return Vec{x[0] - 2.0, x[1] + 1.0}; };
  auto box = [](const Vec& x) { return project_box(x, 0.0, 1.0); };
  const auto check =
      check_first_order_optimality(Vec{1.0, 0.0}, grad, box, 1e-6, 1e-9);
  EXPECT_TRUE(check.passed);
}

TEST(FirstOrderCheck, FailsAwayFromOptimum) {
  auto grad = [](const Vec& x) { return Vec{x[0] - 2.0, x[1] + 1.0}; };
  auto box = [](const Vec& x) { return project_box(x, 0.0, 1.0); };
  const auto check =
      check_first_order_optimality(Vec{0.5, 0.5}, grad, box, 1e-3, 1e-6);
  EXPECT_FALSE(check.passed);
  EXPECT_GT(check.residual, 1e-6);
}

TEST(FirstOrderCheck, ScaleNormalizesResidual) {
  auto grad = [](const Vec& x) { return Vec{x[0] - 10.0}; };
  auto identity = [](const Vec& x) { return x; };
  const auto raw =
      check_first_order_optimality(Vec{0.0}, grad, identity, 1e-3, 1e-6, 1.0);
  const auto scaled = check_first_order_optimality(Vec{0.0}, grad, identity,
                                                   1e-3, 1e-6, 100.0);
  EXPECT_NEAR(raw.residual, 100.0 * scaled.residual, 1e-12);
}

TEST(FirstOrderCheck, InvalidParametersThrow) {
  auto grad = [](const Vec& x) { return x; };
  auto identity = [](const Vec& x) { return x; };
  EXPECT_THROW(
      check_first_order_optimality(Vec{0.0}, grad, identity, 0.0, 1e-6),
      ContractViolation);
  EXPECT_THROW(
      check_first_order_optimality(Vec{0.0}, grad, identity, 1e-6, 0.0),
      ContractViolation);
}

}  // namespace
}  // namespace ufc
