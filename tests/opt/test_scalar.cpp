#include <gtest/gtest.h>

#include <cmath>

#include "opt/scalar.hpp"
#include "util/contract.hpp"

namespace ufc {
namespace {

TEST(MonotoneRoot, LinearFunction) {
  // g(x) = 2x - 4 has root 2.
  const double root = monotone_root([](double x) { return 2.0 * x - 4.0; },
                                    0.0, 10.0);
  EXPECT_NEAR(root, 2.0, 1e-10);
}

TEST(MonotoneRoot, ClampsToLowerBound) {
  const double root =
      monotone_root([](double x) { return x + 1.0; }, 0.0, 10.0);
  EXPECT_DOUBLE_EQ(root, 0.0);
}

TEST(MonotoneRoot, ClampsToUpperBound) {
  const double root =
      monotone_root([](double x) { return x - 100.0; }, 0.0, 10.0);
  EXPECT_DOUBLE_EQ(root, 10.0);
}

TEST(MonotoneRoot, StepFunctionConvergesToJump) {
  // Subdifferential of |x - 3|-style kink: jumps from -1 to +1 at x = 3.
  auto g = [](double x) { return x < 3.0 ? -1.0 : 1.0; };
  const double root = monotone_root(g, 0.0, 10.0);
  EXPECT_NEAR(root, 3.0, 1e-9);
}

TEST(MonotoneRoot, InvertedBoundsThrow) {
  EXPECT_THROW(monotone_root([](double x) { return x; }, 1.0, 0.0),
               ContractViolation);
}

TEST(MinimizeConvexScalar, QuadraticInterior) {
  // f(x) = (x - 2)^2, f'(x) = 2(x - 2).
  const double x = minimize_convex_scalar(
      [](double v) { return 2.0 * (v - 2.0); }, 0.0, 10.0);
  EXPECT_NEAR(x, 2.0, 1e-9);
}

TEST(MinimizeConvexScalar, BoundaryMinimum) {
  // f(x) = x on [1, 5]: minimized at 1.
  const double x =
      minimize_convex_scalar([](double) { return 1.0; }, 1.0, 5.0);
  EXPECT_DOUBLE_EQ(x, 1.0);
}

TEST(MinimizeConvexScalar, PiecewiseLinearKink) {
  // f(x) = max(2 - x, 2x - 4): minimized at the kink x = 2.
  auto derivative = [](double x) { return x < 2.0 ? -1.0 : 2.0; };
  const double x = minimize_convex_scalar(derivative, 0.0, 10.0);
  EXPECT_NEAR(x, 2.0, 1e-9);
}

TEST(GoldenSection, SmoothUnimodal) {
  const double x = golden_section_minimize(
      [](double v) { return (v - 1.5) * (v - 1.5) + 3.0; }, -10.0, 10.0);
  EXPECT_NEAR(x, 1.5, 1e-6);
}

TEST(GoldenSection, NonDifferentiableUnimodal) {
  const double x = golden_section_minimize(
      [](double v) { return std::abs(v + 2.0); }, -10.0, 10.0);
  EXPECT_NEAR(x, -2.0, 1e-6);
}

TEST(GoldenSection, BoundaryMinimum) {
  const double x =
      golden_section_minimize([](double v) { return v; }, 2.0, 8.0);
  EXPECT_NEAR(x, 2.0, 1e-6);
}

}  // namespace
}  // namespace ufc
