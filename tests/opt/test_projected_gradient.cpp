#include <gtest/gtest.h>

#include <cmath>

#include "math/projections.hpp"
#include "opt/projected_gradient.hpp"
#include "util/contract.hpp"

namespace ufc {
namespace {

TEST(ProjectedGradient, QuadraticOverBox) {
  auto gradient = [](const Vec& x) { return Vec{x[0] - 5.0, x[1] + 1.0}; };
  auto box = [](const Vec& x) { return project_box(x, 0.0, 2.0); };
  const auto result = projected_gradient(Vec(2, 1.0), gradient, box, 1.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 2.0, 1e-8);
  EXPECT_NEAR(result.x[1], 0.0, 1e-8);
}

TEST(ProjectedGradient, ZeroLipschitzThrows) {
  auto gradient = [](const Vec& x) { return x; };
  auto identity = [](const Vec& x) { return x; };
  EXPECT_THROW(projected_gradient(Vec{1.0}, gradient, identity, 0.0),
               ContractViolation);
}

TEST(ProjectedSubgradient, SmoothQuadraticFindsMinimum) {
  auto subgrad = [](const Vec& x) { return Vec{2.0 * (x[0] - 3.0)}; };
  auto value = [](const Vec& x) { return (x[0] - 3.0) * (x[0] - 3.0); };
  auto identity = [](const Vec& x) { return x; };
  SubgradientOptions options;
  options.max_iterations = 5000;
  options.step0 = 1.0;
  const auto result =
      projected_subgradient(Vec{0.0}, subgrad, value, identity, options);
  EXPECT_NEAR(result.best_x[0], 3.0, 1e-2);
  EXPECT_LT(result.best_value, 1e-3);
}

TEST(ProjectedSubgradient, NonsmoothAbsoluteValue) {
  // f(x) = |x - 1| + 0.5 |x + 1|; minimized at x = 1 (slopes -0.5 then 1.5).
  auto subgrad = [](const Vec& x) {
    const double s1 = x[0] > 1.0 ? 1.0 : (x[0] < 1.0 ? -1.0 : 0.0);
    const double s2 = x[0] > -1.0 ? 0.5 : (x[0] < -1.0 ? -0.5 : 0.0);
    return Vec{s1 + s2};
  };
  auto value = [](const Vec& x) {
    return std::abs(x[0] - 1.0) + 0.5 * std::abs(x[0] + 1.0);
  };
  auto identity = [](const Vec& x) { return x; };
  SubgradientOptions options;
  options.max_iterations = 20000;
  options.step0 = 2.0;
  const auto result =
      projected_subgradient(Vec{-5.0}, subgrad, value, identity, options);
  EXPECT_NEAR(result.best_x[0], 1.0, 0.05);
}

TEST(ProjectedSubgradient, StopsAtStationaryPoint) {
  auto subgrad = [](const Vec&) { return Vec{0.0}; };
  auto value = [](const Vec&) { return 42.0; };
  auto identity = [](const Vec& x) { return x; };
  const auto result =
      projected_subgradient(Vec{1.0}, subgrad, value, identity);
  EXPECT_EQ(result.iterations, 1);
  EXPECT_DOUBLE_EQ(result.best_value, 42.0);
}

TEST(ProjectedSubgradient, ConstrainedTracksBestIterate) {
  // min -x over [0, 1]: optimum x = 1 on the boundary.
  auto subgrad = [](const Vec&) { return Vec{-1.0}; };
  auto value = [](const Vec& x) { return -x[0]; };
  auto box = [](const Vec& x) { return project_box(x, 0.0, 1.0); };
  const auto result = projected_subgradient(Vec{0.0}, subgrad, value, box);
  EXPECT_NEAR(result.best_x[0], 1.0, 1e-6);
}

TEST(ProjectedSubgradient, InvalidOptionsThrow) {
  auto f = [](const Vec& x) { return x; };
  auto v = [](const Vec&) { return 0.0; };
  SubgradientOptions bad;
  bad.step0 = 0.0;
  EXPECT_THROW(projected_subgradient(Vec{1.0}, f, v, f, bad),
               ContractViolation);
}

}  // namespace
}  // namespace ufc
