#include <gtest/gtest.h>

#include "math/projections.hpp"
#include "opt/fista.hpp"
#include "util/contract.hpp"
#include "util/rng.hpp"

namespace ufc {
namespace {

// Quadratic f(x) = 0.5 ||x - target||^2 helpers.
std::function<Vec(const Vec&)> quadratic_gradient(Vec target) {
  return [target = std::move(target)](const Vec& x) { return x - target; };
}

TEST(Fista, UnconstrainedQuadraticReachesMinimum) {
  const Vec target{1.0, -2.0, 3.0};
  auto identity = [](const Vec& x) { return x; };
  const auto result = fista_minimize(Vec(3, 0.0), quadratic_gradient(target),
                                     identity, 1.0);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(max_abs_diff(result.x, target), 1e-8);
}

TEST(Fista, BoxConstrainedQuadraticClipsAtBounds) {
  const Vec target{2.0, -1.0, 0.5};
  auto box = [](const Vec& x) { return project_box(x, 0.0, 1.0); };
  const auto result =
      fista_minimize(Vec(3, 0.5), quadratic_gradient(target), box, 1.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 1.0, 1e-8);
  EXPECT_NEAR(result.x[1], 0.0, 1e-8);
  EXPECT_NEAR(result.x[2], 0.5, 1e-8);
}

TEST(Fista, SimplexConstrainedQuadratic) {
  // min 0.5||x - (1, 0)||^2 over the unit simplex: solution (1, 0).
  auto simplex = [](const Vec& x) { return project_simplex(x, 1.0); };
  const auto result = fista_minimize(Vec{0.5, 0.5},
                                     quadratic_gradient(Vec{1.0, 0.0}),
                                     simplex, 1.0);
  EXPECT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 1.0, 1e-8);
}

TEST(Fista, IllConditionedQuadraticStillConverges) {
  // f = 0.5 (100 x0^2 + x1^2) - 100 x0 - x1; optimum (1, 1); L = 100.
  auto gradient = [](const Vec& x) {
    return Vec{100.0 * x[0] - 100.0, x[1] - 1.0};
  };
  auto identity = [](const Vec& x) { return x; };
  FistaOptions options;
  options.max_iterations = 5000;
  const auto result =
      fista_minimize(Vec(2, 0.0), gradient, identity, 100.0, options);
  EXPECT_TRUE(result.converged);
  EXPECT_LT(max_abs_diff(result.x, Vec{1.0, 1.0}), 1e-6);
}

TEST(Fista, AdaptiveRestartBeatsPlainMomentumOnIllConditioned) {
  auto gradient = [](const Vec& x) {
    return Vec{400.0 * x[0] - 400.0, x[1] - 1.0};
  };
  auto identity = [](const Vec& x) { return x; };
  FistaOptions restart;
  restart.max_iterations = 20000;
  restart.tolerance = 1e-12;
  FistaOptions plain = restart;
  plain.adaptive_restart = false;
  const auto with_restart =
      fista_minimize(Vec(2, 0.0), gradient, identity, 400.0, restart);
  const auto without =
      fista_minimize(Vec(2, 0.0), gradient, identity, 400.0, plain);
  EXPECT_TRUE(with_restart.converged);
  EXPECT_LE(with_restart.iterations, without.iterations);
}

TEST(Fista, RankOnePlusIdentityHessianMatchesActiveSetSolution) {
  // The lambda-block structure: H = c L L^T + rho I, g linear, over simplex.
  // Verified against a dense brute-force grid on 2 variables.
  const Vec latency{0.01, 0.03};
  const double c = 2.0, rho = 0.3, total = 1.0;
  auto gradient = [&](const Vec& x) {
    const double inner = dot(latency, x);
    Vec g(2);
    for (int j = 0; j < 2; ++j)
      g[j] = c * inner * latency[j] + rho * x[j] - 0.1 * (j == 0 ? 1 : -1);
    return g;
  };
  auto simplex = [&](const Vec& x) { return project_simplex(x, total); };
  const double lipschitz = c * dot(latency, latency) + rho;
  const auto result =
      fista_minimize(Vec{0.5, 0.5}, gradient, simplex, lipschitz);
  ASSERT_TRUE(result.converged);

  // Brute force over the simplex edge x0 in [0, 1].
  auto value = [&](double x0) {
    const Vec x{x0, total - x0};
    const double inner = dot(latency, x);
    return 0.5 * c * inner * inner +
           0.5 * rho * dot(x, x) - 0.1 * (x[0] - x[1]);
  };
  double best_x0 = 0.0, best = value(0.0);
  for (int k = 1; k <= 10000; ++k) {
    const double x0 = k / 10000.0;
    if (value(x0) < best) {
      best = value(x0);
      best_x0 = x0;
    }
  }
  EXPECT_NEAR(result.x[0], best_x0, 2e-4);
}

TEST(Fista, InvalidLipschitzThrows) {
  auto identity = [](const Vec& x) { return x; };
  EXPECT_THROW(
      fista_minimize(Vec{0.0}, quadratic_gradient(Vec{1.0}), identity, 0.0),
      ContractViolation);
}

TEST(Fista, RespectsIterationBudget) {
  auto gradient = [](const Vec& x) { return Vec{x[0] - 1.0}; };
  auto identity = [](const Vec& x) { return x; };
  FistaOptions options;
  options.max_iterations = 3;
  options.tolerance = 1e-16;
  // Deliberately overestimate L so steps are tiny and 3 iterations cannot
  // reach the optimum.
  const auto result =
      fista_minimize(Vec{100.0}, gradient, identity, 1e4, options);
  EXPECT_EQ(result.iterations, 3);
  EXPECT_FALSE(result.converged);
}

}  // namespace
}  // namespace ufc
