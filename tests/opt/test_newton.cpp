// Projected truncated-Newton (opt/newton.hpp): exact minimizers on
// box-constrained quadratics, CG truncation behavior, and option guards.
#include <gtest/gtest.h>

#include <cmath>

#include "opt/newton.hpp"
#include "util/contract.hpp"

namespace ufc {
namespace {

Vec clamp_box(const Vec& x, double lo, double hi) {
  Vec out(x.size());
  for (std::size_t i = 0; i < x.size(); ++i)
    out[i] = std::min(hi, std::max(lo, x[i]));
  return out;
}

/// f(x) = 0.5 sum_i d_i (x_i - c_i)^2 over the box [0, 1]^n: the minimizer
/// is clamp(c), reachable in very few Newton steps.
TEST(ProjectedNewton, SolvesBoxConstrainedQuadratic) {
  const std::vector<double> d{1.0, 4.0, 9.0};
  const std::vector<double> c{0.3, -2.0, 1.7};
  auto value = [&](const Vec& x) {
    double total = 0.0;
    for (std::size_t i = 0; i < x.size(); ++i)
      total += 0.5 * d[i] * (x[i] - c[i]) * (x[i] - c[i]);
    return total;
  };
  auto gradient = [&](const Vec& x) {
    Vec g(x.size());
    for (std::size_t i = 0; i < x.size(); ++i) g[i] = d[i] * (x[i] - c[i]);
    return g;
  };
  auto hessian_vec = [&](const Vec& /*x*/, const Vec& v) {
    Vec out(v.size());
    for (std::size_t i = 0; i < v.size(); ++i) out[i] = d[i] * v[i];
    return out;
  };
  auto project = [&](const Vec& x) { return clamp_box(x, 0.0, 1.0); };

  Vec x0(3);
  x0.fill(0.5);
  // The convergence test is on the fixed-point residual, which carries the
  // 1e-3 step factor: tolerance 1e-9 puts the iterate within ~1e-6 of the
  // minimizer.
  NewtonOptions options;
  options.tolerance = 1e-9;
  const NewtonResult result =
      projected_newton(x0, value, gradient, hessian_vec, project, options);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 0.3, 1e-5);
  EXPECT_NEAR(result.x[1], 0.0, 1e-5);  // clamped at the lower bound
  EXPECT_NEAR(result.x[2], 1.0, 1e-5);  // clamped at the upper bound
  EXPECT_LT(result.iterations, 50);
}

TEST(ProjectedNewton, StartsFromTheProjectedInitialPoint) {
  // x0 far outside the box must not break anything: the solver projects
  // first, and an interior unconstrained optimum is then found exactly.
  auto value = [](const Vec& x) { return 0.5 * (x[0] - 0.5) * (x[0] - 0.5); };
  auto gradient = [](const Vec& x) {
    Vec g(1);
    g[0] = x[0] - 0.5;
    return g;
  };
  auto hessian_vec = [](const Vec&, const Vec& v) { return v; };
  auto project = [](const Vec& x) { return clamp_box(x, 0.0, 1.0); };
  Vec x0(1);
  x0[0] = 1e9;
  const NewtonResult result =
      projected_newton(x0, value, gradient, hessian_vec, project);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 0.5, 1e-6);
}

TEST(ProjectedNewton, FlatCurvatureFallsBackToProjectedGradient) {
  // A linear objective has H = 0: the first CG product exposes zero
  // curvature, the solver degrades to projected-gradient steps, and the
  // box corner is still reached.
  auto value = [](const Vec& x) { return x[0] + 2.0 * x[1]; };
  auto gradient = [](const Vec& x) {
    Vec g(x.size());
    g[0] = 1.0;
    g[1] = 2.0;
    return g;
  };
  auto hessian_vec = [](const Vec&, const Vec& v) {
    Vec out(v.size());
    out.fill(0.0);
    return out;
  };
  auto project = [](const Vec& x) { return clamp_box(x, 0.0, 1.0); };
  Vec x0(2);
  x0.fill(1.0);
  NewtonOptions options;
  options.max_iterations = 5000;
  options.tolerance = 1e-8;
  const NewtonResult result =
      projected_newton(x0, value, gradient, hessian_vec, project, options);
  ASSERT_TRUE(result.converged);
  EXPECT_NEAR(result.x[0], 0.0, 1e-6);
  EXPECT_NEAR(result.x[1], 0.0, 1e-6);
}

TEST(ProjectedNewton, RejectsOutOfDomainOptions) {
  auto value = [](const Vec& x) { return x[0] * x[0]; };
  auto gradient = [](const Vec& x) {
    Vec g(1);
    g[0] = 2.0 * x[0];
    return g;
  };
  auto hessian_vec = [](const Vec&, const Vec& v) { return v; };
  auto project = [](const Vec& x) { return x; };
  Vec x0(1);
  x0[0] = 1.0;

  NewtonOptions bad = {};
  bad.max_iterations = 0;
  EXPECT_THROW(projected_newton(x0, value, gradient, hessian_vec, project, bad),
               ContractViolation);
  bad = {};
  bad.tolerance = -1.0;
  EXPECT_THROW(projected_newton(x0, value, gradient, hessian_vec, project, bad),
               ContractViolation);
  bad = {};
  bad.cg_tolerance = 0.0;
  EXPECT_THROW(projected_newton(x0, value, gradient, hessian_vec, project, bad),
               ContractViolation);
}

}  // namespace
}  // namespace ufc
