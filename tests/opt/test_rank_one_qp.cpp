#include <gtest/gtest.h>

#include "math/projections.hpp"
#include "opt/fista.hpp"
#include "opt/rank_one_qp.hpp"
#include "util/contract.hpp"
#include "util/rng.hpp"

namespace ufc {
namespace {

RankOneQp random_qp(Rng& rng, std::size_t n) {
  RankOneQp qp;
  qp.curvature = rng.uniform(0.0, 50.0);
  qp.tikhonov = rng.uniform(0.1, 20.0);
  qp.direction = Vec(n);
  qp.linear = Vec(n);
  for (std::size_t i = 0; i < n; ++i) {
    qp.direction[i] = rng.uniform(0.0, 0.1);
    qp.linear[i] = rng.uniform(-5.0, 5.0);
  }
  return qp;
}

Vec fista_reference_simplex(const RankOneQp& qp, double total) {
  auto gradient = [&](const Vec& x) {
    const double s = dot(qp.direction, x);
    Vec g = qp.linear;
    for (std::size_t i = 0; i < x.size(); ++i)
      g[i] += qp.curvature * s * qp.direction[i] + qp.tikhonov * x[i];
    return g;
  };
  auto project = [&](const Vec& x) { return project_simplex(x, total); };
  const double lipschitz =
      qp.curvature * dot(qp.direction, qp.direction) + qp.tikhonov;
  FistaOptions options;
  options.tolerance = 1e-13;
  options.max_iterations = 50000;
  return fista_minimize(Vec(qp.direction.size(), 0.0), gradient, project,
                        lipschitz, options)
      .x;
}

TEST(RankOneQp, PureTikhonovHasClosedForm) {
  // c = 0: minimize (rho/2)||x||^2 + g.x over simplex == projection of -g/rho.
  RankOneQp qp;
  qp.curvature = 0.0;
  qp.tikhonov = 2.0;
  qp.direction = Vec{0.0, 0.0, 0.0};
  qp.linear = Vec{-4.0, -2.0, 6.0};
  const Vec x = solve_rank_one_qp_simplex(qp, 1.0);
  const Vec expected = project_simplex(Vec{2.0, 1.0, -3.0}, 1.0);
  EXPECT_LT(max_abs_diff(x, expected), 1e-10);
}

TEST(RankOneQp, ZeroTotalReturnsZeros) {
  RankOneQp qp;
  qp.curvature = 1.0;
  qp.tikhonov = 1.0;
  qp.direction = Vec{1.0, 2.0};
  qp.linear = Vec{0.0, 0.0};
  const Vec x = solve_rank_one_qp_simplex(qp, 0.0);
  EXPECT_DOUBLE_EQ(x[0], 0.0);
  EXPECT_DOUBLE_EQ(x[1], 0.0);
  const Vec y = solve_rank_one_qp_capped(qp, 0.0);
  EXPECT_DOUBLE_EQ(y[0], 0.0);
}

class RankOneQpSimplexProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RankOneQpSimplexProperty, MatchesFistaToHighPrecision) {
  Rng rng(GetParam());
  const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 8));
  const RankOneQp qp = random_qp(rng, n);
  const double total = rng.uniform(0.1, 10.0);

  const Vec exact = solve_rank_one_qp_simplex(qp, total);
  // Feasibility.
  double s = 0.0;
  for (double v : exact) {
    EXPECT_GE(v, -1e-12);
    s += v;
  }
  EXPECT_NEAR(s, total, 1e-9 * std::max(1.0, total));
  // Optimality vs the iterative reference.
  const Vec reference = fista_reference_simplex(qp, total);
  EXPECT_LE(rank_one_qp_value(qp, exact),
            rank_one_qp_value(qp, reference) + 1e-8);
  EXPECT_LT(max_abs_diff(exact, reference), 1e-5 * std::max(1.0, total));
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankOneQpSimplexProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

class RankOneQpCappedProperty
    : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RankOneQpCappedProperty, FeasibleAndBeatsRandomFeasiblePoints) {
  Rng rng(GetParam() + 400);
  const std::size_t n = 2 + static_cast<std::size_t>(rng.uniform_int(0, 8));
  const RankOneQp qp = random_qp(rng, n);
  const double cap = rng.uniform(0.1, 10.0);

  const Vec exact = solve_rank_one_qp_capped(qp, cap);
  double s = 0.0;
  for (double v : exact) {
    EXPECT_GE(v, -1e-12);
    s += v;
  }
  EXPECT_LE(s, cap + 1e-9);

  const double f_star = rank_one_qp_value(qp, exact);
  for (int k = 0; k < 200; ++k) {
    Vec x(n);
    double total = 0.0;
    for (auto& e : x) {
      e = rng.uniform(0.0, 1.0);
      total += e;
    }
    const double scale = rng.uniform(0.0, 1.0) * cap / std::max(total, 1e-12);
    for (auto& e : x) e *= scale;
    EXPECT_GE(rank_one_qp_value(qp, x), f_star - 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RankOneQpCappedProperty,
                         ::testing::Range<std::uint64_t>(1, 21));

TEST(RankOneQp, CappedReducesToSimplexWhenCapBinds) {
  Rng rng(9);
  const RankOneQp qp = [&] {
    RankOneQp q = random_qp(rng, 4);
    // Strongly negative linear term pushes mass against the cap.
    for (std::size_t i = 0; i < 4; ++i) q.linear[i] = -10.0 - q.linear[i];
    return q;
  }();
  const double cap = 0.5;
  const Vec capped = solve_rank_one_qp_capped(qp, cap);
  const Vec simplex = solve_rank_one_qp_simplex(qp, cap);
  EXPECT_LT(max_abs_diff(capped, simplex), 1e-9);
  EXPECT_NEAR(sum(capped), cap, 1e-9);
}

TEST(RankOneQp, CappedStaysInteriorWhenOptimal) {
  // Positive linear costs keep the optimum at zero, far from the cap.
  RankOneQp qp;
  qp.curvature = 1.0;
  qp.tikhonov = 1.0;
  qp.direction = Vec{1.0, 1.0};
  qp.linear = Vec{3.0, 4.0};
  const Vec x = solve_rank_one_qp_capped(qp, 100.0);
  EXPECT_NEAR(x[0], 0.0, 1e-12);
  EXPECT_NEAR(x[1], 0.0, 1e-12);
}

TEST(RankOneQp, InvalidInputsThrow) {
  RankOneQp qp;
  qp.direction = Vec{1.0};
  qp.linear = Vec{0.0};
  qp.tikhonov = 0.0;
  EXPECT_THROW(solve_rank_one_qp_simplex(qp, 1.0), ContractViolation);
  qp.tikhonov = 1.0;
  qp.curvature = -1.0;
  EXPECT_THROW(solve_rank_one_qp_simplex(qp, 1.0), ContractViolation);
  qp.curvature = 1.0;
  qp.direction = Vec{-1.0};
  EXPECT_THROW(solve_rank_one_qp_capped(qp, 1.0), ContractViolation);
  qp.direction = Vec{1.0};
  EXPECT_THROW(solve_rank_one_qp_simplex(qp, -1.0), ContractViolation);
}

}  // namespace
}  // namespace ufc
